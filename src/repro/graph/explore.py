"""Branch-aware partition exploration over fusion segments.

Each :class:`~repro.graph.lower.SegmentStep` is a linear chain, so the
paper's ``2^(l-1)`` partition sweep (:func:`repro.core.partition.
enumerate_partitions`) applies per segment unchanged. The branch-aware
part is the *join policy* and the shared storage budget:

* a structurally fusable join may execute **fused** — the body tensor
  never touches DRAM (saving its write and the join's read of it) and
  any skip operand equal to the segment's own input is *retained* on
  chip (saving its re-read, costing its footprint) — or at the
  **boundary**, where every operand is read back from DRAM;
* extra on-chip storage is one pool: reuse buffers (BL/BT) of every
  fused group plus retained skip tensors, compared against a single
  ``storage_budget_bytes``.

Selection is a deterministic greedy ascent: start every segment at its
minimum-storage point with boundary joins, then repeatedly apply the
upgrade (a better partition for one segment, or fusing one join) with
the best traffic-saved-per-extra-byte ratio that still fits the budget.
Free upgrades (zero storage delta) rank ahead of everything else. With
no budget the sweep takes each segment's minimum-transfer partition and
fuses every fusable join.

Baselines reported alongside the chosen configuration:

* ``layer_by_layer`` — every group size 1, every join at the boundary
  (the unfused network);
* ``all_boundary`` — segments optimized identically but **no** join
  fused (branch-unaware fusion). Whenever a join is fusable the chosen
  configuration strictly beats it on both traffic and fused-layer
  count — the acceptance check in the spirit of GENESYS's
  ``check_fused_layer_count``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..core.fusion import Strategy
from ..core.partition import PartitionAnalysis, analyze_partition, enumerate_partitions
from ..errors import ConfigError
from ..nn.stages import independent_units
from .ir import GraphNetwork
from .lower import GraphProgram, JoinStep, OpaqueStep, SegmentStep, lower_graph


@dataclass(frozen=True)
class SegmentDecision:
    """The serializable form of one segment's configuration."""

    sizes: Tuple[int, ...]
    join_fused: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {"sizes": list(self.sizes), "join_fused": self.join_fused}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SegmentDecision":
        return cls(sizes=tuple(int(s) for s in data["sizes"]),
                   join_fused=bool(data.get("join_fused", False)))


@dataclass(frozen=True)
class SegmentChoice:
    """One scored (partition, join policy) configuration for one segment."""

    step: SegmentStep
    analysis: PartitionAnalysis
    join_fused: bool

    def __post_init__(self) -> None:
        if self.join_fused and self.step.join is None:
            raise ConfigError(f"segment {self.step.name} has no fusable join",
                              segment=self.step.name)

    @property
    def retained_skip_bytes(self) -> int:
        """On-chip footprint of skip tensors held across the segment."""
        if not self.join_fused:
            return 0
        join = self.step.join
        return sum(join.operand_bytes(t) for t in self.step.retained_skips())

    @property
    def streamed_skip_bytes(self) -> int:
        if not self.join_fused:
            return 0
        join = self.step.join
        return sum(join.operand_bytes(t) for t in self.step.streamed_skips())

    @property
    def transfer_bytes(self) -> int:
        """DRAM feature traffic of the segment including its join, if any.

        Boundary join: the segment writes its body output, the join
        reads every operand back and writes its result. Fused join: the
        body write is replaced by the join-output write, retained skips
        cost nothing, streamed skips are read once.
        """
        base = self.analysis.feature_transfer_bytes
        join = self.step.join
        if join is None:
            return base
        join_out = join.out_shape.bytes
        if self.join_fused:
            return (base - self.step.out_shape.bytes + join_out
                    + self.streamed_skip_bytes)
        operands = sum(shape.bytes for shape in join.operand_shapes)
        return base + operands + join_out

    @property
    def extra_storage_bytes(self) -> int:
        return self.analysis.extra_storage_bytes + self.retained_skip_bytes

    @property
    def fused_layer_count(self) -> int:
        """Levels participating in a fused structure (groups of >= 2),
        plus the join and — when the body's last group stood alone — that
        last level, once a join fuses through."""
        count = sum(size for size in self.analysis.sizes if size >= 2)
        if self.join_fused:
            count += 1
            if self.analysis.sizes[-1] == 1:
                count += 1
        return count

    @property
    def decision(self) -> SegmentDecision:
        return SegmentDecision(sizes=self.analysis.sizes,
                               join_fused=self.join_fused)


@dataclass(frozen=True)
class GraphConfig:
    """A full configuration: one choice per segment plus the fixed
    traffic of boundary-only joins and opaque steps."""

    choices: Tuple[SegmentChoice, ...]
    fixed_transfer_bytes: int

    @property
    def feature_transfer_bytes(self) -> int:
        return (sum(c.transfer_bytes for c in self.choices)
                + self.fixed_transfer_bytes)

    @property
    def extra_storage_bytes(self) -> int:
        return sum(c.extra_storage_bytes for c in self.choices)

    @property
    def retained_skip_bytes(self) -> int:
        return sum(c.retained_skip_bytes for c in self.choices)

    @property
    def fused_layer_count(self) -> int:
        return sum(c.fused_layer_count for c in self.choices)

    @property
    def fused_join_count(self) -> int:
        return sum(1 for c in self.choices if c.join_fused)

    @property
    def decisions(self) -> Tuple[SegmentDecision, ...]:
        return tuple(c.decision for c in self.choices)

    def describe(self) -> str:
        parts = []
        for choice in self.choices:
            tag = ""
            if choice.step.join is not None:
                tag = "+join" if choice.join_fused else "|join"
            parts.append(f"{choice.step.name}{choice.analysis.sizes}{tag}")
        return " ".join(parts)


@dataclass(frozen=True)
class GraphExplorationResult:
    """Chosen configuration plus the two baselines."""

    network: GraphNetwork
    program: GraphProgram
    strategy: Strategy
    tip: int
    storage_budget_bytes: Optional[int]
    chosen: GraphConfig
    all_boundary: GraphConfig
    layer_by_layer: GraphConfig

    @property
    def network_name(self) -> str:
        return self.network.name


def segment_tip(step: SegmentStep, tip: int) -> Tuple[int, int]:
    """Clamp a plan-wide tip to the segment's output map (the same clamp
    linear plans apply per group)."""
    out = step.out_shape
    return min(tip, out.height), min(tip, out.width)


def _fixed_transfer(program: GraphProgram) -> int:
    """Feature traffic of steps with no configuration freedom."""
    total = 0
    for step in program.steps:
        if isinstance(step, JoinStep):
            join = step.join
            total += sum(shape.bytes for shape in join.operand_shapes)
            total += join.out_shape.bytes
        elif isinstance(step, OpaqueStep):
            node = step.node
            total += node.input_shapes[0].bytes + node.output_shape.bytes
    return total


def explore_graph(network: GraphNetwork,
                  strategy: Strategy = Strategy.REUSE,
                  tip: int = 1,
                  storage_budget_bytes: Optional[int] = None,
                  jobs: int = 1,
                  program: Optional[GraphProgram] = None) -> GraphExplorationResult:
    """Branch-aware exploration: per-segment partition sweeps plus the
    greedy join/storage ascent described in the module docstring."""
    if tip < 1:
        raise ConfigError("tip must be >= 1", tip=tip)
    if program is None:
        program = lower_graph(network)
    segments = program.segments
    fixed = _fixed_transfer(program)
    with obs.span("graph.explore", network=network.name,
                  segments=len(segments), strategy=strategy.name):
        candidates: List[List[SegmentChoice]] = []
        for step in segments:
            tip_h, tip_w = segment_tip(step, tip)
            points = enumerate_partitions(independent_units(step.levels),
                                          strategy=strategy,
                                          tip_h=tip_h, tip_w=tip_w, jobs=jobs)
            options = [SegmentChoice(step=step, analysis=p, join_fused=False)
                       for p in points]
            if step.join is not None:
                options.extend(SegmentChoice(step=step, analysis=p,
                                             join_fused=True)
                               for p in points)
            candidates.append(options)
        obs.add_counter("graph.segments_explored", len(segments))

        chosen = _select(candidates, storage_budget_bytes)
        boundary_only = [[c for c in options if not c.join_fused]
                         for options in candidates]
        all_boundary = _select(boundary_only, storage_budget_bytes)
        lbl = tuple(
            SegmentChoice(step=step,
                          analysis=analyze_partition(
                              independent_units(step.levels),
                              (1,) * len(step.levels), strategy=strategy,
                              tip_h=segment_tip(step, tip)[0],
                              tip_w=segment_tip(step, tip)[1]),
                          join_fused=False)
            for step in segments)
    return GraphExplorationResult(
        network=network, program=program, strategy=strategy, tip=tip,
        storage_budget_bytes=storage_budget_bytes,
        chosen=GraphConfig(choices=chosen, fixed_transfer_bytes=fixed),
        all_boundary=GraphConfig(choices=all_boundary,
                                 fixed_transfer_bytes=fixed),
        layer_by_layer=GraphConfig(choices=lbl, fixed_transfer_bytes=fixed))


def _select(candidates: List[List[SegmentChoice]],
            storage_budget_bytes: Optional[int]) -> Tuple[SegmentChoice, ...]:
    """Deterministic greedy selection under one shared storage budget."""
    def argmin(options: List[SegmentChoice], key) -> SegmentChoice:
        best_idx = min(range(len(options)),
                       key=lambda i: key(options[i]) + (i,))
        return options[best_idx]

    if storage_budget_bytes is None:
        return tuple(
            argmin(options,
                   lambda c: (c.transfer_bytes, c.extra_storage_bytes))
            for options in candidates)

    # Start at the minimum-storage configuration of every segment.
    current: List[SegmentChoice] = [
        argmin(options, lambda c: (c.extra_storage_bytes, c.transfer_bytes))
        for options in candidates]
    remaining = storage_budget_bytes - sum(c.extra_storage_bytes
                                           for c in current)
    while True:
        best = None  # (ratio_key, seg_idx, cand_idx, choice, d_storage)
        for seg_idx, options in enumerate(candidates):
            cur = current[seg_idx]
            for cand_idx, choice in enumerate(options):
                saved = cur.transfer_bytes - choice.transfer_bytes
                if saved <= 0:
                    continue
                d_storage = (choice.extra_storage_bytes
                             - cur.extra_storage_bytes)
                if d_storage > remaining:
                    continue
                ratio = saved / d_storage if d_storage > 0 else float("inf")
                key = (ratio, saved, -seg_idx, -cand_idx)
                if best is None or key > best[0]:
                    best = (key, seg_idx, cand_idx, choice, d_storage)
        if best is None:
            break
        _, seg_idx, _, choice, d_storage = best
        current[seg_idx] = choice
        remaining -= d_storage
    return tuple(current)
