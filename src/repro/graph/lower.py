"""Lowering: decompose a DAG into maximal linear fusion segments.

The paper's pyramid model (Section III) applies to a linear chain of
windowed levels. A DAG lowers onto it as follows:

* **Folding** mirrors :func:`repro.nn.stages.extract_levels`: an explicit
  :class:`~repro.nn.layers.PadSpec` folds into its (single) consuming
  convolution, and a :class:`~repro.nn.layers.ReLUSpec` folds onto its
  producer — a windowed level *or a join* (the post-add ReLU of a
  residual block evaluates inside the join).

* **Segments** are maximal chains of windowed levels connected by
  fan-out-1 edges. Any tensor consumed more than once (the residual
  source), produced for a join, or feeding a non-windowed layer is a
  segment boundary: it is materialized to DRAM exactly once and each
  fused group inside a segment prices its traffic with the unmodified
  linear model (:mod:`repro.core.partition` per segment).

* **Joins** (:class:`~repro.graph.ir.EltwiseSpec` /
  :class:`~repro.graph.ir.ConcatSpec`) are *structurally fusable* into
  the segment producing one of their operands when that operand has no
  other consumer: the body tensor then never touches DRAM — the join
  applies as the segment's output stage. Whether a fusable join is
  actually fused is a per-plan decision (it costs retained skip
  footprint); see :mod:`repro.graph.explore` for the cost model.

Every graph node lands in exactly one step (the segment-coverage
identity checked by RC704): levels and their folded pads/ReLUs in a
:class:`SegmentStep`, joins in their :class:`SegmentStep` or a boundary
:class:`JoinStep`, and FC/LRN/unfoldable-ReLU nodes in an
:class:`OpaqueStep`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..nn.layers import ConvSpec, FCSpec, LRNSpec, PadSpec, PoolSpec, ReLUSpec
from ..nn.shapes import TensorShape
from ..nn.stages import Level
from .ir import INPUT, ConcatSpec, EltwiseSpec, GraphError, GraphNetwork, GraphNode


@dataclass(frozen=True)
class JoinInfo:
    """A join node bound to its operand tensors."""

    name: str
    kind: str  # "add" | "mul" | "max" | "concat"
    operands: Tuple[str, ...]
    operand_shapes: Tuple[TensorShape, ...]
    out_shape: TensorShape
    has_relu: bool
    output_tensor: str
    node_names: Tuple[str, ...]

    def operand_bytes(self, tensor: str) -> int:
        for operand, shape in zip(self.operands, self.operand_shapes):
            if operand == tensor:
                return shape.bytes
        raise KeyError(f"{tensor!r} is not an operand of join {self.name}")


@dataclass(frozen=True)
class SegmentStep:
    """A maximal linear chain of windowed levels, optionally ending in a
    structurally fusable join."""

    name: str
    levels: Tuple[Level, ...]
    input_tensor: str
    output_tensor: str  # tensor of the last level (pre-join)
    node_names: Tuple[str, ...]
    join: Optional[JoinInfo] = None

    @property
    def final_tensor(self) -> str:
        """Tensor this step produces when its join (if any) is fused."""
        return self.join.output_tensor if self.join else self.output_tensor

    @property
    def out_shape(self) -> TensorShape:
        return self.levels[-1].out_shape

    def skip_operands(self) -> Tuple[str, ...]:
        """Join operands other than this segment's own body output."""
        if self.join is None:
            return ()
        return tuple(t for t in self.join.operands if t != self.output_tensor)

    def retained_skips(self) -> Tuple[str, ...]:
        """Skip operands held on chip while the segment runs (they are
        the segment's own input, already streamed in — retaining them
        costs footprint but no extra DRAM traffic)."""
        return tuple(t for t in self.skip_operands()
                     if t == self.input_tensor)

    def streamed_skips(self) -> Tuple[str, ...]:
        """Skip operands re-read from DRAM at join time."""
        return tuple(t for t in self.skip_operands()
                     if t != self.input_tensor)


@dataclass(frozen=True)
class JoinStep:
    """A join executed at a segment boundary: every operand read from
    DRAM, the result written back."""

    join: JoinInfo

    @property
    def name(self) -> str:
        return self.join.name


@dataclass(frozen=True)
class OpaqueStep:
    """A non-fusable node (FC, LRN, unfoldable ReLU) executed on its own."""

    name: str
    node: GraphNode
    input_tensor: str
    output_tensor: str


Step = Union[SegmentStep, JoinStep, OpaqueStep]


@dataclass
class _Op:
    """Mutable lowering intermediate: one level/join/opaque with folded
    neighbours, before segment assembly."""

    kind: str  # "level" | "join" | "opaque"
    node_names: List[str]
    input_tensors: Tuple[str, ...]
    output_tensor: str
    level: Optional[Level] = None
    node: Optional[GraphNode] = None
    join_kind: str = ""
    out_shape: Optional[TensorShape] = None
    has_relu: bool = False
    folded_pad: int = 0
    pad_input: str = ""
    extra: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class GraphProgram:
    """The lowered form of a :class:`GraphNetwork`."""

    network: GraphNetwork
    steps: Tuple[Step, ...]
    output_tensor: str
    node_step: Dict[str, str]

    @property
    def segments(self) -> List[SegmentStep]:
        return [s for s in self.steps if isinstance(s, SegmentStep)]

    @property
    def boundary_joins(self) -> List[JoinStep]:
        return [s for s in self.steps if isinstance(s, JoinStep)]

    @property
    def opaques(self) -> List[OpaqueStep]:
        return [s for s in self.steps if isinstance(s, OpaqueStep)]

    def describe(self) -> str:
        lines = [f"{self.network.name}: {len(self.segments)} segments, "
                 f"{len(self.boundary_joins)} boundary joins, "
                 f"{len(self.opaques)} opaque steps"]
        for step in self.steps:
            if isinstance(step, SegmentStep):
                chain = " > ".join(lv.name for lv in step.levels)
                join = (f" +join[{step.join.kind}:{step.join.name}]"
                        if step.join else "")
                lines.append(f"  segment {step.name}: {chain}{join}")
            elif isinstance(step, JoinStep):
                lines.append(f"  join {step.name} "
                             f"({step.join.kind} of {step.join.operands})")
            else:
                lines.append(f"  opaque {step.name} "
                             f"({type(step.node.spec).__name__})")
        return "\n".join(lines)


def lower_graph(network: GraphNetwork) -> GraphProgram:
    """Lower ``network`` into segments, joins, and opaque steps."""
    if len(network) == 0:
        raise GraphError("cannot lower an empty graph", network=network.name)
    output_name = network.output_name  # validates single sink
    ops = _fold(network)
    fan = Counter()
    for op in ops:
        fan.update(op.input_tensors)
    steps, node_step = _assemble(ops, fan)
    return GraphProgram(network=network, steps=tuple(steps),
                        output_tensor=output_name, node_step=node_step)


def _fold(network: GraphNetwork) -> List[_Op]:
    """Pass 1: one op per windowed/join/opaque node, pads and ReLUs folded."""
    ops: List[_Op] = []
    producer: Dict[str, _Op] = {}  # tensor name -> producing op
    folded_pads: Dict[str, Tuple[int, str]] = {}  # pad node -> (pad, source)
    pad_owner: Dict[str, List[str]] = {}  # pad node -> covered node names

    def emit(op: _Op) -> None:
        ops.append(op)
        producer[op.output_tensor] = op

    for node in network:
        spec = node.spec
        if isinstance(spec, PadSpec):
            consumers = network.consumers(node.name)
            if (network.fan_out(node.name) != 1
                    or not isinstance(consumers[0].spec, ConvSpec)):
                raise GraphError(
                    f"{node.name}: an explicit padding node must feed "
                    "exactly one convolution",
                    network=network.name,
                    consumers=[c.name for c in consumers])
            src = node.inputs[0]
            if src in folded_pads:
                prior, origin = folded_pads.pop(src)
                folded_pads[node.name] = (prior + spec.pad, origin)
                pad_owner[node.name] = pad_owner.pop(src) + [node.name]
            else:
                folded_pads[node.name] = (spec.pad, src)
                pad_owner[node.name] = [node.name]
            continue
        if isinstance(spec, ReLUSpec):
            src = node.inputs[0]
            src_op = producer.get(src)
            if (src_op is not None and network.fan_out(src) == 1
                    and src_op.kind in ("level", "join")):
                # fold onto the producer: its output tensor becomes ours
                del producer[src_op.output_tensor]
                src_op.has_relu = True
                src_op.output_tensor = node.name
                src_op.node_names.append(node.name)
                if src_op.kind == "level":
                    src_op.level = _level_with_relu(src_op.level)
                producer[node.name] = src_op
                continue
            emit(_Op(kind="opaque", node_names=[node.name],
                     input_tensors=node.inputs, output_tensor=node.name,
                     node=node))
            continue
        if isinstance(spec, (FCSpec, LRNSpec)):
            emit(_Op(kind="opaque", node_names=[node.name],
                     input_tensors=node.inputs, output_tensor=node.name,
                     node=node))
            continue
        if isinstance(spec, (EltwiseSpec, ConcatSpec)):
            kind = spec.op if isinstance(spec, EltwiseSpec) else "concat"
            emit(_Op(kind="join", node_names=[node.name],
                     input_tensors=node.inputs, output_tensor=node.name,
                     join_kind=kind, out_shape=node.output_shape, node=node))
            continue
        if isinstance(spec, (ConvSpec, PoolSpec)):
            src = node.inputs[0]
            pad = 0
            covered = [node.name]
            if src in folded_pads:
                if isinstance(spec, PoolSpec):
                    raise GraphError(
                        f"{node.name}: padding before pooling is unsupported",
                        network=network.name)
                pad, src = folded_pads.pop(src)
                covered = pad_owner.pop(node.inputs[0]) + covered
            level = _node_to_level(network, node, extra_pad=pad,
                                   input_tensor=src)
            emit(_Op(kind="level", node_names=covered,
                     input_tensors=(src,), output_tensor=node.name,
                     level=level, node=node))
            continue
        raise GraphError(
            f"{node.name}: unsupported spec {type(spec).__name__} in a "
            "graph network", network=network.name)
    if folded_pads:
        raise GraphError("padding node with no consuming convolution",
                         network=network.name,
                         nodes=sorted(folded_pads))
    return ops


def _node_to_level(network: GraphNetwork, node: GraphNode, extra_pad: int,
                   input_tensor: str) -> Level:
    spec = node.spec
    in_shape = network.tensor_shape(input_tensor, site=node.name)
    if isinstance(spec, ConvSpec):
        return Level(name=node.name, kind="conv", kernel=spec.kernel,
                     stride=spec.stride, pad=spec.padding + extra_pad,
                     in_shape=in_shape, out_shape=node.output_shape,
                     weight_count=spec.weight_count(node.input_shapes[0]),
                     ops_per_output=spec.ops_per_output(node.input_shapes[0]),
                     groups=spec.groups)
    return Level(name=node.name, kind="pool", kernel=spec.kernel,
                 stride=spec.stride, pad=0, in_shape=in_shape,
                 out_shape=node.output_shape, weight_count=0,
                 ops_per_output=spec.ops_per_output(node.input_shapes[0]),
                 pool_mode=spec.mode)


def _level_with_relu(level: Level) -> Level:
    return Level(name=level.name, kind=level.kind, kernel=level.kernel,
                 stride=level.stride, pad=level.pad, in_shape=level.in_shape,
                 out_shape=level.out_shape, weight_count=level.weight_count,
                 ops_per_output=level.ops_per_output, has_relu=True,
                 pool_mode=level.pool_mode, groups=level.groups)


def _assemble(ops: List[_Op], fan: Counter) -> Tuple[List[Step], Dict[str, str]]:
    """Pass 2: greedy maximal segments over the folded op list."""
    steps: List[Step] = []
    node_step: Dict[str, str] = {}
    open_ops: List[_Op] = []

    def open_output() -> Optional[str]:
        return open_ops[-1].output_tensor if open_ops else None

    def close(join: Optional[JoinInfo] = None,
              join_names: Tuple[str, ...] = ()) -> None:
        if not open_ops:
            return
        name = open_ops[0].node_names[0]
        covered = tuple(n for op in open_ops for n in op.node_names)
        step = SegmentStep(
            name=name,
            levels=tuple(op.level for op in open_ops),
            input_tensor=open_ops[0].input_tensors[0],
            output_tensor=open_ops[-1].output_tensor,
            node_names=covered + join_names,
            join=join)
        steps.append(step)
        for node_name in step.node_names:
            node_step[node_name] = step.name
        open_ops.clear()

    for op in ops:
        if op.kind == "level":
            if (open_ops and op.input_tensors[0] == open_output()
                    and fan[open_output()] == 1):
                open_ops.append(op)
            else:
                close()
                open_ops.append(op)
            continue
        if op.kind == "join":
            join = JoinInfo(name=op.node_names[0], kind=op.join_kind,
                            operands=op.input_tensors,
                            operand_shapes=op.node.input_shapes,
                            out_shape=op.out_shape,
                            has_relu=op.has_relu,
                            output_tensor=op.output_tensor,
                            node_names=tuple(op.node_names))
            body = open_output()
            if (open_ops and body in op.input_tensors and fan[body] == 1):
                close(join=join, join_names=tuple(op.node_names))
            else:
                close()
                steps.append(JoinStep(join=join))
                for node_name in op.node_names:
                    node_step[node_name] = join.name
            continue
        # opaque
        close()
        steps.append(OpaqueStep(name=op.node_names[0], node=op.node,
                                input_tensor=op.input_tensors[0],
                                output_tensor=op.output_tensor))
        node_step[op.node_names[0]] = op.node_names[0]
    close()
    return steps, node_step
