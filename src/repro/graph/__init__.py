"""repro.graph: DAG network IR and branch-aware fusion.

The linear :class:`~repro.nn.network.Network` caps the zoo at
AlexNet/VGG-era chains. This package generalizes the reproduction to
directed acyclic networks — residual adds, depth concatenation,
elementwise joins, depthwise convolution — while reusing the paper's
fusion machinery unchanged underneath:

* :mod:`~repro.graph.ir` — :class:`GraphNetwork`: named nodes, shape and
  channel inference, topological iteration, content fingerprinting.
* :mod:`~repro.graph.lower` — decompose the DAG into maximal linear
  *fusion segments*; skip connections either bound fusion groups or fuse
  through a join.
* :mod:`~repro.graph.explore` — per-segment ``2^(l-1)`` partition sweeps
  (:mod:`repro.core.partition` per segment) plus a greedy join/storage
  ascent pricing retained skip tensors as on-chip footprint.
* :mod:`~repro.graph.executor` — NumPy reference and fused-segment
  execution, bit-identical in integer mode (including under
  ``transfer_corrupt`` fault plans).
* :mod:`~repro.graph.zoo` — ``resnet18``, ``resnet50``, ``mobilenetv2``,
  and a YOLO-style detector head.
* :mod:`~repro.graph.parse` — a line-oriented text form for DAG specs.
* :mod:`~repro.graph.plan` — :class:`CompiledGraphPlan` for the serving
  stack (``PlanKey`` family ``"graph"``).
"""

from .explore import (
    GraphConfig,
    GraphExplorationResult,
    SegmentChoice,
    SegmentDecision,
    explore_graph,
)
from .executor import GraphExecutor, default_decisions, make_graph_weights
from .ir import (
    INPUT,
    ConcatSpec,
    EltwiseSpec,
    GraphError,
    GraphNetwork,
    GraphNode,
    depthwise,
)
from .lower import (
    GraphProgram,
    JoinInfo,
    JoinStep,
    OpaqueStep,
    SegmentStep,
    lower_graph,
)
from .parse import dump_graph, parse_graph
from .plan import CompiledGraphPlan, compile_graph_plan
from .zoo import GRAPH_ZOO, mobilenetv2, resnet18, resnet50, yolo_head

__all__ = [
    "CompiledGraphPlan",
    "ConcatSpec",
    "EltwiseSpec",
    "GRAPH_ZOO",
    "GraphConfig",
    "GraphError",
    "GraphExecutor",
    "GraphExplorationResult",
    "GraphNetwork",
    "GraphNode",
    "GraphProgram",
    "INPUT",
    "JoinInfo",
    "JoinStep",
    "OpaqueStep",
    "SegmentChoice",
    "SegmentDecision",
    "SegmentStep",
    "compile_graph_plan",
    "default_decisions",
    "depthwise",
    "dump_graph",
    "explore_graph",
    "lower_graph",
    "make_graph_weights",
    "mobilenetv2",
    "parse_graph",
    "resnet18",
    "resnet50",
    "yolo_head",
]
