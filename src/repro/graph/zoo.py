"""DAG network zoo: ResNet-18/50, MobileNetV2, and a YOLO-style head.

Input sizes are *derived*, not the ImageNet 224: the repo's window
arithmetic (:func:`repro.nn.shapes.conv_output_extent`) rejects partial
windows, so every downsampling stage must divide exactly. Working
backwards from a final-stage extent ``f``:

* ResNets (7x7/2 pad3 conv, 3x3/2 pool, three 3x3/2 pad1 downsamples):
  ``input = 32*f - 27`` — 197 for the ImageNet-like default ``f = 7``,
  37 for the smallest test geometry ``f = 2``.
* MobileNetV2 (five 3x3/2 pad1 downsamples): ``input = 32*f - 31`` —
  193 default, 33 for tests.
* The YOLO-style head (four 2x2/2 pools): ``input = 16*f`` — 208 default
  (13x13 detection grid), 48 for tests.

Each builder validates its ``input_size`` and raises
:class:`~repro.graph.ir.GraphError` naming the legal family otherwise.
"""

from __future__ import annotations

from ..nn.layers import ConvSpec, FCSpec, PoolSpec, ReLUSpec
from ..nn.shapes import TensorShape
from .ir import ConcatSpec, EltwiseSpec, GraphError, GraphNetwork, depthwise


def _check_size(input_size: int, stride: int, offset: int, family: str) -> int:
    """Solve ``input = stride*f + offset`` for integer ``f >= 2``."""
    f, rem = divmod(input_size - offset, stride)
    if rem != 0 or f < 2:
        legal = [stride * g + offset for g in range(2, 8)]
        raise GraphError(
            f"{family}: input size {input_size} does not divide cleanly; "
            f"legal sizes are {stride}*f{offset:+d} for f >= 2, "
            f"e.g. {legal}",
            input_size=input_size, family=family)
    return f


def _residual_tail(net: GraphNetwork, tag: str, body: str, skip: str) -> str:
    net.add(EltwiseSpec(f"{tag}_add", op="add"), inputs=(body, skip))
    return net.add(ReLUSpec(f"{tag}_out"))


def _basic_block(net: GraphNetwork, tag: str, prev: str,
                 in_channels: int, width: int, stride: int) -> str:
    net.add(ConvSpec(f"{tag}_conv1", kernel=3, stride=stride, padding=1,
                     out_channels=width), inputs=(prev,))
    net.add(ReLUSpec(f"{tag}_relu1"))
    body = net.add(ConvSpec(f"{tag}_conv2", kernel=3, stride=1, padding=1,
                            out_channels=width))
    skip = prev
    if stride != 1 or in_channels != width:
        skip = net.add(ConvSpec(f"{tag}_proj", kernel=1, stride=stride,
                                out_channels=width, bias=False),
                       inputs=(prev,))
    return _residual_tail(net, tag, body, skip)


def _bottleneck_block(net: GraphNetwork, tag: str, prev: str,
                      in_channels: int, width: int, stride: int) -> str:
    out_channels = 4 * width
    net.add(ConvSpec(f"{tag}_conv1", kernel=1, stride=1,
                     out_channels=width), inputs=(prev,))
    net.add(ReLUSpec(f"{tag}_relu1"))
    net.add(ConvSpec(f"{tag}_conv2", kernel=3, stride=stride, padding=1,
                     out_channels=width))
    net.add(ReLUSpec(f"{tag}_relu2"))
    body = net.add(ConvSpec(f"{tag}_conv3", kernel=1, stride=1,
                            out_channels=out_channels))
    skip = prev
    if stride != 1 or in_channels != out_channels:
        skip = net.add(ConvSpec(f"{tag}_proj", kernel=1, stride=stride,
                                out_channels=out_channels, bias=False),
                       inputs=(prev,))
    return _residual_tail(net, tag, body, skip)


def _resnet(name: str, input_size: int, block, stage_blocks,
            expansion: int) -> GraphNetwork:
    _check_size(input_size, 32, -27, name)
    net = GraphNetwork(name, TensorShape(3, input_size, input_size))
    net.add(ConvSpec("conv1", kernel=7, stride=2, padding=3, out_channels=64))
    net.add(ReLUSpec("conv1_relu"))
    prev = net.add(PoolSpec("pool1", kernel=3, stride=2))
    channels = 64
    widths = (64, 128, 256, 512)
    for stage, (width, blocks) in enumerate(zip(widths, stage_blocks),
                                            start=1):
        for index in range(blocks):
            stride = 2 if (stage > 1 and index == 0) else 1
            prev = block(net, f"s{stage}b{index + 1}", prev, channels,
                         width, stride)
            channels = width * expansion
    extent = net.node(prev).output_shape.height
    net.add(PoolSpec("avgpool", kernel=extent, stride=extent, mode="avg"),
            inputs=(prev,))
    net.add(FCSpec("fc", out_features=1000))
    return net


def resnet18(input_size: int = 197) -> GraphNetwork:
    """ResNet-18: basic residual blocks (2-2-2-2), identity and
    projection skips."""
    return _resnet("ResNet-18", input_size, _basic_block,
                   (2, 2, 2, 2), expansion=1)


def resnet50(input_size: int = 197) -> GraphNetwork:
    """ResNet-50: bottleneck blocks (3-4-6-3), 4x channel expansion."""
    return _resnet("ResNet-50", input_size, _bottleneck_block,
                   (3, 4, 6, 3), expansion=4)


#: MobileNetV2 inverted-residual rows: (expansion t, channels, blocks, stride).
_MBV2_ROWS = ((1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
              (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1))


def _inverted_residual(net: GraphNetwork, tag: str, prev: str,
                       in_channels: int, out_channels: int,
                       stride: int, expansion: int) -> str:
    hidden = in_channels * expansion
    body = prev
    if expansion != 1:
        net.add(ConvSpec(f"{tag}_expand", kernel=1, stride=1,
                         out_channels=hidden), inputs=(prev,))
        body = net.add(ReLUSpec(f"{tag}_expand_relu"))
    net.add(depthwise(f"{tag}_dw", hidden, kernel=3, stride=stride,
                      padding=1), inputs=(body,))
    net.add(ReLUSpec(f"{tag}_dw_relu"))
    body = net.add(ConvSpec(f"{tag}_project", kernel=1, stride=1,
                            out_channels=out_channels))
    if stride == 1 and in_channels == out_channels:
        return net.add(EltwiseSpec(f"{tag}_add", op="add"),
                       inputs=(body, prev))
    return body


def mobilenetv2(input_size: int = 193) -> GraphNetwork:
    """MobileNetV2: depthwise-separable inverted residuals with linear
    bottlenecks (residual add, *no* ReLU after the join)."""
    _check_size(input_size, 32, -31, "MobileNetV2")
    net = GraphNetwork("MobileNetV2", TensorShape(3, input_size, input_size))
    net.add(ConvSpec("conv1", kernel=3, stride=2, padding=1, out_channels=32))
    prev = net.add(ReLUSpec("conv1_relu"))
    channels = 32
    for row, (t, out_channels, blocks, stride) in enumerate(_MBV2_ROWS,
                                                            start=1):
        for index in range(blocks):
            s = stride if index == 0 else 1
            prev = _inverted_residual(net, f"r{row}b{index + 1}", prev,
                                      channels, out_channels, s, t)
            channels = out_channels
    net.add(ConvSpec("head", kernel=1, stride=1, out_channels=1280),
            inputs=(prev,))
    prev = net.add(ReLUSpec("head_relu"))
    extent = net.node(prev).output_shape.height
    net.add(PoolSpec("avgpool", kernel=extent, stride=extent, mode="avg"))
    net.add(FCSpec("fc", out_features=1000))
    return net


def yolo_head(input_size: int = 208) -> GraphNetwork:
    """A small YOLO-style detector: conv/pool backbone, a route that
    depth-concatenates a 1x1 squeeze with its own source (the classic
    passthrough), and a 1x1 detection convolution (5 boxes x 25)."""
    f, rem = divmod(input_size, 16)
    if rem != 0 or f < 2:
        raise GraphError(
            f"YOLO head: input size {input_size} must be 16*f for f >= 2, "
            f"e.g. {[16 * g for g in range(2, 8)]}",
            input_size=input_size, family="yolo")
    net = GraphNetwork("YOLO-head", TensorShape(3, input_size, input_size))
    prev = "input"
    for index, channels in enumerate((16, 32, 64, 128), start=1):
        net.add(ConvSpec(f"conv{index}", kernel=3, stride=1, padding=1,
                         out_channels=channels), inputs=(prev,))
        net.add(ReLUSpec(f"conv{index}_relu"))
        prev = net.add(PoolSpec(f"pool{index}", kernel=2, stride=2))
    net.add(ConvSpec("conv5", kernel=3, stride=1, padding=1,
                     out_channels=256))
    route = net.add(ReLUSpec("conv5_relu"))
    net.add(ConvSpec("conv6", kernel=1, stride=1, out_channels=128),
            inputs=(route,))
    squeeze = net.add(ReLUSpec("conv6_relu"))
    net.add(ConcatSpec("route"), inputs=(squeeze, route))
    net.add(ConvSpec("conv7", kernel=3, stride=1, padding=1,
                     out_channels=256))
    net.add(ReLUSpec("conv7_relu"))
    net.add(ConvSpec("detect", kernel=1, stride=1, out_channels=125))
    return net


#: Registry used by the CLI: name -> (builder, smallest legal input size).
GRAPH_ZOO = {
    "resnet18": (resnet18, 37),
    "resnet50": (resnet50, 37),
    "mobilenetv2": (mobilenetv2, 33),
    "yolohead": (yolo_head, 32),
}
