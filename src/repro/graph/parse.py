"""A line-oriented text form for DAG network specs.

Grammar (one statement per line; ``#`` starts a comment)::

    graph <display name>           # optional, first
    input CxHxW                    # required before any node

    # node lines: [src[, src] ->] name = op [relu]
    c1 = conv 16 3x3/1 pad=1 relu  # input defaults to the previous node
    p1 = pool max 2x2/2
    p1 -> b1 = conv 16 3x3/1 pad=1 relu
    b2 = conv 16 3x3/1 pad=1
    j1 = add(b2, p1) relu          # joins name their operands
    d1 = dwconv 3x3/1 pad=1        # depthwise: channels from the input
    f  = fc 10

Ops: ``conv M KxK/S [pad=P] [groups=G] [nobias]``, ``dwconv KxK/S
[pad=P] [nobias]``, ``pool max|avg KxK/S``, ``relu``, ``pad P``,
``lrn [size=S] [alpha=A] [beta=B] [k=K]``, ``fc N [nobias]``, and the
joins ``add(a,b)`` / ``mul(a,b)`` / ``max(a,b)`` / ``concat(a,b)``. A
trailing ``relu`` on a conv/pool/join line adds a ``<name>_relu`` node,
which later references should name. The reserved tensor ``input`` is the
graph input. Nodes must be declared before they are referenced
(declaration order is the topological order).

:func:`parse_graph` raises :class:`~repro.nn.parse.ParseError` with the
offending line number; :func:`dump_graph` emits canonical text such that
``parse_graph(dump_graph(g))`` reproduces ``g``'s fingerprint exactly.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..nn.layers import (
    ConvSpec,
    FCSpec,
    LayerSpec,
    LRNSpec,
    PadSpec,
    PoolSpec,
    ReLUSpec,
)
from ..nn.parse import ParseError
from ..nn.shapes import ShapeError, TensorShape
from .ir import INPUT, ConcatSpec, EltwiseSpec, GraphError, GraphNetwork

_NAME = r"[A-Za-z_][A-Za-z0-9_]*"
_NAME_RE = re.compile(rf"^{_NAME}$")
_SHAPE_RE = re.compile(r"^(\d+)x(\d+)x(\d+)$")
_WINDOW_RE = re.compile(r"^(\d+)x(\d+)/(\d+)$")
_JOIN_RE = re.compile(rf"^(add|mul|max|concat)\(\s*({_NAME}(?:\s*,\s*{_NAME})+)\s*\)$")
_NODE_RE = re.compile(rf"^({_NAME})\s*=\s*(.+)$")


def _fail(lineno: int, message: str) -> "ParseError":
    return ParseError(f"line {lineno}: {message}", line=lineno)


def _window(token: str, lineno: int) -> Tuple[int, int]:
    match = _WINDOW_RE.match(token)
    if not match:
        raise _fail(lineno, f"expected KxK/S window, got {token!r}")
    kh, kw, stride = (int(g) for g in match.groups())
    if kh != kw:
        raise _fail(lineno, f"only square kernels are supported: {token!r}")
    return kh, int(stride)


def _keyword_args(tokens: List[str], lineno: int, allowed: dict) -> dict:
    """Parse trailing ``key=value`` / flag tokens against ``allowed``
    (mapping key -> converter, or flag -> None)."""
    out = {}
    for token in tokens:
        if "=" in token:
            key, _, value = token.partition("=")
            if key not in allowed or allowed[key] is None:
                raise _fail(lineno, f"unknown option {token!r}")
            try:
                out[key] = allowed[key](value)
            except ValueError:
                raise _fail(lineno, f"bad value in {token!r}") from None
        else:
            if token not in allowed or allowed[token] is not None:
                raise _fail(lineno, f"unknown option {token!r}")
            out[token] = True
    return out


def parse_graph(text: str, name: str = "parsed-graph") -> GraphNetwork:
    """Parse the text form into a :class:`GraphNetwork`."""
    net: Optional[GraphNetwork] = None
    display = name
    previous = INPUT
    pending: List[Tuple[int, str, List[str], str]] = []

    lines = text.splitlines()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        # A node line always contains '=' (and may legitimately start
        # with 'input ->' or 'graph ='), so the two header forms only
        # claim lines without one.
        if line.startswith("graph ") and "=" not in line:
            if net is not None or pending:
                raise _fail(lineno, "'graph' must come before everything else")
            display = line[len("graph "):].strip()
            if not display:
                raise _fail(lineno, "empty graph name")
            continue
        if line.startswith("input ") and "=" not in line:
            if net is not None:
                raise _fail(lineno, "duplicate 'input' line")
            match = _SHAPE_RE.match(line[len("input "):].strip())
            if not match:
                raise _fail(lineno, "expected 'input CxHxW'")
            c, h, w = (int(g) for g in match.groups())
            net = GraphNetwork(display, TensorShape(c, h, w))
            continue
        if net is None:
            raise _fail(lineno, "an 'input CxHxW' line must come first")

        sources: Optional[List[str]] = None
        if "->" in line:
            left, _, line = line.partition("->")
            sources = [tok.strip() for tok in left.split(",")]
            for tok in sources:
                if not _NAME_RE.match(tok):
                    raise _fail(lineno, f"bad source name {tok!r}")
            line = line.strip()
        match = _NODE_RE.match(line)
        if not match:
            raise _fail(lineno, f"expected 'name = op', got {line!r}")
        node_name, spec_text = match.group(1), match.group(2).strip()
        previous = _add_node(net, node_name, spec_text, sources, previous,
                             lineno)
    if net is None:
        raise ParseError("no 'input CxHxW' line found", line=0)
    if len(net) == 0:
        raise ParseError("graph has no nodes", line=len(lines))
    return net


def _add_node(net: GraphNetwork, name: str, spec_text: str,
              sources: Optional[List[str]], previous: str,
              lineno: int) -> str:
    tokens = spec_text.split()
    has_relu = False
    if tokens and tokens[-1] == "relu" and tokens[0] != "relu":
        has_relu = True
        tokens = tokens[:-1]
        spec_text = " ".join(tokens)
    if not tokens:
        raise _fail(lineno, "empty op")
    op = tokens[0]
    join = _JOIN_RE.match(spec_text)
    try:
        if join:
            if sources is not None:
                raise _fail(lineno,
                            "joins name their operands in parentheses; "
                            "an arrow prefix is not allowed")
            kind = join.group(1)
            operands = [tok.strip() for tok in join.group(2).split(",")]
            spec: LayerSpec
            if kind == "concat":
                spec = ConcatSpec(name)
            else:
                spec = EltwiseSpec(name, op=kind)
            net.add(spec, tuple(operands))
        else:
            inputs = tuple(sources) if sources is not None else (previous,)
            if len(inputs) != 1:
                raise _fail(lineno, f"{op} takes exactly one input")
            spec = _unary_spec(net, name, op, tokens[1:], inputs[0], lineno)
            net.add(spec, inputs)
    except (GraphError, ShapeError) as exc:
        raise _fail(lineno, str(exc)) from exc
    result = name
    if has_relu:
        try:
            net.add(ReLUSpec(f"{name}_relu"), (name,))
        except (GraphError, ShapeError) as exc:
            raise _fail(lineno, str(exc)) from exc
        result = f"{name}_relu"
    return result


def _unary_spec(net: GraphNetwork, name: str, op: str, args: List[str],
                source: str, lineno: int) -> LayerSpec:
    if op == "conv":
        if len(args) < 2:
            raise _fail(lineno, "conv needs channels and a KxK/S window")
        try:
            channels = int(args[0])
        except ValueError:
            raise _fail(lineno, f"bad channel count {args[0]!r}") from None
        kernel, stride = _window(args[1], lineno)
        opts = _keyword_args(args[2:], lineno,
                             {"pad": int, "groups": int, "nobias": None})
        return ConvSpec(name, kernel=kernel, stride=stride,
                        out_channels=channels, padding=opts.get("pad", 0),
                        groups=opts.get("groups", 1),
                        bias=not opts.get("nobias", False))
    if op == "dwconv":
        if len(args) < 1:
            raise _fail(lineno, "dwconv needs a KxK/S window")
        kernel, stride = _window(args[0], lineno)
        opts = _keyword_args(args[1:], lineno, {"pad": int, "nobias": None})
        channels = net.tensor_shape(source, site=name).channels
        return ConvSpec(name, kernel=kernel, stride=stride,
                        out_channels=channels, padding=opts.get("pad", 0),
                        groups=channels, bias=not opts.get("nobias", False))
    if op == "pool":
        if len(args) < 2 or args[0] not in ("max", "avg"):
            raise _fail(lineno, "pool needs 'max|avg KxK/S'")
        kernel, stride = _window(args[1], lineno)
        _keyword_args(args[2:], lineno, {})
        return PoolSpec(name, kernel=kernel, stride=stride, mode=args[0])
    if op == "relu":
        _keyword_args(args, lineno, {})
        return ReLUSpec(name)
    if op == "pad":
        if len(args) != 1:
            raise _fail(lineno, "pad needs exactly one amount")
        try:
            return PadSpec(name, pad=int(args[0]))
        except ValueError:
            raise _fail(lineno, f"bad pad amount {args[0]!r}") from None
    if op == "lrn":
        opts = _keyword_args(args, lineno, {"size": int, "alpha": float,
                                            "beta": float, "k": float})
        return LRNSpec(name, size=opts.get("size", 5),
                       alpha=opts.get("alpha", 1e-4),
                       beta=opts.get("beta", 0.75), k=opts.get("k", 2.0))
    if op == "fc":
        if len(args) < 1:
            raise _fail(lineno, "fc needs an output feature count")
        try:
            features = int(args[0])
        except ValueError:
            raise _fail(lineno, f"bad feature count {args[0]!r}") from None
        opts = _keyword_args(args[1:], lineno, {"nobias": None})
        return FCSpec(name, out_features=features,
                      bias=not opts.get("nobias", False))
    raise _fail(lineno, f"unknown op {op!r}")


def dump_graph(network: GraphNetwork) -> str:
    """Emit canonical text; ``parse_graph`` of it reproduces the
    network's fingerprint (names, specs, and edges are preserved)."""
    lines = [f"graph {network.name}"]
    shape = network.input_shape
    lines.append(f"input {shape.channels}x{shape.height}x{shape.width}")
    nodes = network.nodes
    previous = INPUT
    index = 0
    while index < len(nodes):
        node = nodes[index]
        if not _NAME_RE.match(node.name):
            raise GraphError(
                f"node name {node.name!r} has no text form",
                network=network.name)
        folded_relu = False
        nxt = nodes[index + 1] if index + 1 < len(nodes) else None
        if (nxt is not None and isinstance(nxt.spec, ReLUSpec)
                and nxt.name == f"{node.name}_relu"
                and nxt.inputs == (node.name,)
                and not isinstance(node.spec, ReLUSpec)):
            folded_relu = True
        spec_text, functional = _spec_text(node)
        prefix = ""
        if not functional and node.inputs != (previous,):
            prefix = ", ".join(node.inputs) + " -> "
        suffix = " relu" if folded_relu else ""
        lines.append(f"{prefix}{node.name} = {spec_text}{suffix}")
        previous = f"{node.name}_relu" if folded_relu else node.name
        index += 2 if folded_relu else 1
    return "\n".join(lines) + "\n"


def _spec_text(node) -> Tuple[str, bool]:
    spec = node.spec
    if isinstance(spec, EltwiseSpec):
        return f"{spec.op}({', '.join(node.inputs)})", True
    if isinstance(spec, ConcatSpec):
        return f"concat({', '.join(node.inputs)})", True
    if isinstance(spec, ConvSpec):
        text = (f"conv {spec.out_channels} "
                f"{spec.kernel}x{spec.kernel}/{spec.stride}")
        if spec.padding:
            text += f" pad={spec.padding}"
        if spec.groups != 1:
            text += f" groups={spec.groups}"
        if not spec.bias:
            text += " nobias"
        return text, False
    if isinstance(spec, PoolSpec):
        return (f"pool {spec.mode} "
                f"{spec.kernel}x{spec.kernel}/{spec.stride}"), False
    if isinstance(spec, ReLUSpec):
        return "relu", False
    if isinstance(spec, PadSpec):
        return f"pad {spec.pad}", False
    if isinstance(spec, LRNSpec):
        return (f"lrn size={spec.size} alpha={spec.alpha!r} "
                f"beta={spec.beta!r} k={spec.k!r}"), False
    if isinstance(spec, FCSpec):
        text = f"fc {spec.out_features}"
        if not spec.bias:
            text += " nobias"
        return text, False
    raise GraphError(f"{node.name}: no text form for {type(spec).__name__}")
