"""DAG network intermediate representation.

The paper's :class:`~repro.nn.network.Network` is a linear chain — enough
for AlexNet/VGG-era zoos, but residual and concatenative architectures
(ResNet, MobileNetV2, YOLO routes) branch. :class:`GraphNetwork` keeps
the same unbound-spec philosophy (specs from :mod:`repro.nn.layers` plus
the join specs below) and adds named multi-input nodes with shape and
channel inference at construction time.

Construction is incremental: :meth:`GraphNetwork.add` requires every
input of a new node to already exist, so a ``GraphNetwork`` is acyclic
*by construction* and its insertion order is a topological order. Raw
(possibly broken) graph dictionaries are diagnosed separately by
:mod:`repro.check.graph`, which cannot assume either invariant.

Joins:

* :class:`EltwiseSpec` — elementwise combine (``add``/``mul``/``max``)
  of same-shaped operands; the residual connection of ResNet and the
  inverted-residual of MobileNetV2.
* :class:`ConcatSpec` — depth concatenation of operands sharing spatial
  extent (DeCoILFNet-style routes, YOLO's detector head).

Depthwise convolution is an existing :class:`~repro.nn.layers.ConvSpec`
with ``groups == channels``; :func:`depthwise` builds one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..nn.layers import (
    ConvSpec,
    FCSpec,
    LayerSpec,
    LRNSpec,
    PadSpec,
    PoolSpec,
    ReLUSpec,
)
from ..nn.shapes import ShapeError, TensorShape


class GraphError(ConfigError):
    """A structural problem in a DAG network description."""


#: Reserved tensor name that refers to the graph input.
INPUT = "input"

ELTWISE_OPS = ("add", "mul", "max")


@dataclass(frozen=True)
class EltwiseSpec(LayerSpec):
    """Elementwise join of two or more same-shaped operands."""

    op: str = "add"

    def __post_init__(self) -> None:
        if self.op not in ELTWISE_OPS:
            raise ShapeError(
                f"{self.name}: eltwise op must be one of {ELTWISE_OPS}")

    def join_output_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) < 2:
            raise ShapeError(f"{self.name}: eltwise join needs >= 2 operands")
        first = input_shapes[0]
        for shape in input_shapes[1:]:
            if shape != first:
                raise ShapeError(
                    f"{self.name}: eltwise operands disagree: "
                    f"{first} vs {shape}")
        return first

    def ops_per_output(self, input_shape: TensorShape) -> int:
        return 1


@dataclass(frozen=True)
class ConcatSpec(LayerSpec):
    """Depth concatenation of operands sharing spatial extent."""

    def join_output_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) < 2:
            raise ShapeError(f"{self.name}: concat needs >= 2 operands")
        first = input_shapes[0]
        for shape in input_shapes[1:]:
            if (shape.height, shape.width) != (first.height, first.width):
                raise ShapeError(
                    f"{self.name}: concat operands disagree spatially: "
                    f"{first} vs {shape}")
        channels = sum(shape.channels for shape in input_shapes)
        return TensorShape(channels, first.height, first.width)


JOIN_SPECS = (EltwiseSpec, ConcatSpec)

#: Spec registry for serialization, superset of the linear plan registry.
GRAPH_SPEC_TYPES = {cls.__name__: cls for cls in
                    (ConvSpec, PoolSpec, ReLUSpec, PadSpec, LRNSpec, FCSpec,
                     EltwiseSpec, ConcatSpec)}


def depthwise(name: str, channels: int, kernel: int = 3, stride: int = 1,
              padding: int = 1, bias: bool = True) -> ConvSpec:
    """A depthwise convolution: one filter per channel (groups == channels)."""
    return ConvSpec(name, kernel=kernel, stride=stride,
                    out_channels=channels, padding=padding,
                    groups=channels, bias=bias)


@dataclass(frozen=True)
class GraphNode:
    """A spec bound to its producers and inferred shapes."""

    index: int
    spec: LayerSpec
    inputs: Tuple[str, ...]
    input_shapes: Tuple[TensorShape, ...]
    output_shape: TensorShape

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_join(self) -> bool:
        return isinstance(self.spec, JOIN_SPECS)

    @property
    def weight_count(self) -> int:
        return self.spec.weight_count(self.input_shapes[0])

    @property
    def total_ops(self) -> int:
        if self.is_join:
            return self.output_shape.elements
        return self.spec.total_ops(self.input_shapes[0])


class GraphNetwork:
    """A DAG of named layer nodes with inferred shapes.

    Nodes are added in dependency order (:meth:`add` rejects references
    to nodes that do not exist yet), so iteration order *is* topological
    order and the graph is acyclic by construction. The reserved name
    ``"input"`` refers to the graph input tensor.
    """

    #: Plan-family marker consumed by :func:`repro.serve.make_plan_key`.
    plan_family = "graph"

    def __init__(self, name: str, input_shape: TensorShape):
        self.name = name
        self.input_shape = input_shape
        self._nodes: "Dict[str, GraphNode]" = {}

    # -- construction --------------------------------------------------------

    def add(self, spec: LayerSpec, inputs: Optional[Sequence[str]] = None) -> str:
        """Append a node; returns its name.

        ``inputs`` defaults to the previously added node (or the graph
        input for the first node). Joins require explicit inputs.
        """
        name = spec.name
        if name == INPUT:
            raise GraphError(f"node name {INPUT!r} is reserved for the graph "
                             "input", network=self.name)
        if name in self._nodes:
            raise GraphError(f"duplicate node name {name!r}",
                             network=self.name)
        if inputs is None:
            if isinstance(spec, JOIN_SPECS):
                raise GraphError(f"{name}: join nodes need explicit inputs",
                                 network=self.name)
            inputs = (self.last_name,)
        inputs = tuple(inputs)
        if not inputs:
            raise GraphError(f"{name}: a node needs at least one input",
                             network=self.name)
        shapes = tuple(self.tensor_shape(src, site=name) for src in inputs)
        if isinstance(spec, JOIN_SPECS):
            if len(set(inputs)) != len(inputs):
                raise GraphError(f"{name}: join operands must be distinct",
                                 network=self.name, inputs=inputs)
            out = spec.join_output_shape(shapes)
        else:
            if len(inputs) != 1:
                raise GraphError(
                    f"{name}: {type(spec).__name__} takes exactly one input",
                    network=self.name, inputs=inputs)
            out = spec.output_shape(shapes[0])
        self._nodes[name] = GraphNode(index=len(self._nodes), spec=spec,
                                      inputs=inputs, input_shapes=shapes,
                                      output_shape=out)
        return name

    # -- lookups -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[GraphNode]:
        return iter(self._nodes.values())

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> GraphNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"no node named {name!r} in {self.name}") from None

    @property
    def nodes(self) -> List[GraphNode]:
        """Nodes in topological (insertion) order."""
        return list(self._nodes.values())

    @property
    def last_name(self) -> str:
        if not self._nodes:
            return INPUT
        return next(reversed(self._nodes))

    def tensor_shape(self, name: str, site: Optional[str] = None) -> TensorShape:
        """Shape of the tensor produced by node ``name`` (or the input)."""
        if name == INPUT:
            return self.input_shape
        node = self._nodes.get(name)
        if node is None:
            where = f"{site}: " if site else ""
            raise GraphError(f"{where}unknown input tensor {name!r}",
                             network=self.name)
        return node.output_shape

    def consumers(self, name: str) -> List[GraphNode]:
        return [node for node in self._nodes.values() if name in node.inputs]

    def fan_out(self, name: str) -> int:
        """How many node inputs reference tensor ``name`` (multiplicity
        counted, so ``add(x, x)`` would report 2)."""
        return sum(node.inputs.count(name) for node in self._nodes.values())

    def sinks(self) -> List[GraphNode]:
        """Nodes whose output no other node consumes."""
        return [node for node in self._nodes.values()
                if self.fan_out(node.name) == 0]

    @property
    def output_name(self) -> str:
        """The single sink's name; raises if the graph has 0 or 2+ sinks."""
        sinks = self.sinks()
        if len(sinks) != 1:
            raise GraphError(
                f"{self.name} must have exactly one output node, found "
                f"{[s.name for s in sinks]}", network=self.name)
        return sinks[0].name

    @property
    def output_shape(self) -> TensorShape:
        if not self._nodes:
            return self.input_shape
        return self.node(self.output_name).output_shape

    def feature_extractor(self) -> "GraphNetwork":
        """The graph up to (excluding) the first fully connected layer
        and anything downstream of it — the fusion-scoped subgraph."""
        trimmed = GraphNetwork(self.name, self.input_shape)
        dropped = set()
        for node in self._nodes.values():
            if isinstance(node.spec, FCSpec) or any(
                    src in dropped for src in node.inputs):
                dropped.add(node.name)
                continue
            trimmed.add(node.spec, node.inputs)
        return trimmed

    # -- aggregate statistics ------------------------------------------------

    def total_weights(self) -> int:
        return sum(node.weight_count for node in self._nodes.values())

    def total_ops(self) -> int:
        return sum(node.total_ops for node in self._nodes.values())

    # -- identity and persistence --------------------------------------------

    def fingerprint(self) -> str:
        """Content identity in the same 16-hex-character format as
        :meth:`repro.nn.network.Network.fingerprint`.

        The payload includes the edge structure (node inputs), so a DAG
        never fingerprints equal to a linear network — the linear payload
        has no ``"nodes"`` key — and any rewiring changes the key.
        """
        payload = {
            "input": [self.input_shape.channels, self.input_shape.height,
                      self.input_shape.width],
            "nodes": [
                {"type": type(node.spec).__name__,
                 "inputs": list(node.inputs),
                 **{f.name: getattr(node.spec, f.name)
                    for f in dataclasses.fields(node.spec)}}
                for node in self._nodes.values()
            ],
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()
        return digest[:16]

    def to_dict(self) -> Dict[str, object]:
        shape = self.input_shape
        return {
            "name": self.name,
            "input_shape": [shape.channels, shape.height, shape.width],
            "nodes": [
                {"type": type(node.spec).__name__,
                 "inputs": list(node.inputs),
                 **{f.name: getattr(node.spec, f.name)
                    for f in dataclasses.fields(node.spec)}}
                for node in self._nodes.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GraphNetwork":
        try:
            c, h, w = data["input_shape"]  # type: ignore[misc]
            nodes = data["nodes"]
            name = data.get("name", "graph")  # type: ignore[union-attr]
        except (KeyError, TypeError, ValueError) as exc:
            raise GraphError(f"malformed graph description: {exc}") from exc
        net = cls(str(name), TensorShape(int(c), int(h), int(w)))
        for entry in nodes:  # type: ignore[union-attr]
            kind = entry.get("type")
            spec_cls = GRAPH_SPEC_TYPES.get(kind)
            if spec_cls is None:
                raise GraphError(f"unknown node spec type {kind!r}",
                                 known=sorted(GRAPH_SPEC_TYPES))
            kwargs = {k: v for k, v in entry.items()
                      if k not in ("type", "inputs")}
            net.add(spec_cls(**kwargs), tuple(entry.get("inputs", ())))
        return net

    def __repr__(self) -> str:
        return (f"GraphNetwork({self.name!r}, {len(self)} nodes, "
                f"in={self.input_shape})")
