"""Exploration budgets: bound a search, degrade instead of dying.

A huge network makes the ``2^(l-1)`` partition space intractable; a
production explorer must return *something* by a deadline instead of
hanging. :class:`ExplorationBudget` caps a search by evaluation count
and/or wall-clock seconds. The contract (see ``docs/robustness.md``):

* the search charges the budget per evaluation and stops — cleanly, at
  an evaluation boundary — once the budget trips;
* at least one evaluation always completes, so a degraded result is
  never empty;
* the caller decides strictness: by default the explorer returns the
  best-so-far Pareto frontier flagged ``degraded=True``; with
  ``on_budget="raise"`` it raises :class:`~repro.errors.BudgetExceeded`.
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import ConfigError


class ExplorationBudget:
    """Mutable per-search budget: evaluations and/or wall-clock seconds.

    A budget instance tracks one search; create a fresh one per call (or
    call :meth:`start` again to rearm the clock and counters).
    """

    def __init__(self, max_evaluations: Optional[int] = None,
                 max_seconds: Optional[float] = None):
        if max_evaluations is not None and max_evaluations < 1:
            raise ConfigError("budget needs max_evaluations >= 1",
                              max_evaluations=max_evaluations)
        if max_seconds is not None and max_seconds <= 0:
            raise ConfigError("budget needs max_seconds > 0",
                              max_seconds=max_seconds)
        if max_evaluations is None and max_seconds is None:
            raise ConfigError(
                "budget needs max_evaluations and/or max_seconds")
        self.max_evaluations = max_evaluations
        self.max_seconds = max_seconds
        self.start()

    def start(self) -> "ExplorationBudget":
        """(Re)arm the budget: zero the counters, restart the clock."""
        self.evaluations = 0
        self.tripped = False
        self._t0 = time.perf_counter()
        return self

    def charge(self, n: int = 1) -> None:
        """Record ``n`` completed evaluations."""
        self.evaluations += n

    @property
    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self._t0

    def exceeded(self) -> bool:
        """Whether the budget is spent; latches :attr:`tripped` once true."""
        if not self.tripped:
            if (self.max_evaluations is not None
                    and self.evaluations >= self.max_evaluations):
                self.tripped = True
            elif (self.max_seconds is not None
                    and self.elapsed_seconds >= self.max_seconds):
                self.tripped = True
        return self.tripped

    def remaining_evaluations(self) -> Optional[int]:
        """Evaluations left before the count limit, or None if unbounded."""
        if self.max_evaluations is None:
            return None
        return max(0, self.max_evaluations - self.evaluations)

    def describe(self) -> str:
        limits = []
        if self.max_evaluations is not None:
            limits.append(f"{self.max_evaluations} evaluations")
        if self.max_seconds is not None:
            limits.append(f"{self.max_seconds:g}s")
        return " / ".join(limits)
