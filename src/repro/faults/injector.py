"""Deterministic fault-decision engine for one simulation run.

A :class:`FaultInjector` turns a :class:`~repro.faults.spec.FaultPlan`
into concrete yes/no decisions at each injection *site* (a stable string
such as ``"channel[load]"`` or ``"input[0:0]"``). Decisions come from
per-``(kind, site)`` pseudo-random streams seeded by CRC32 of
``"{plan.seed}/{kind}/{site}"``, which makes every decision:

* **deterministic** — the same plan, seed, and call sequence injects
  exactly the same faults, run after run;
* **order-insensitive across sites** — adding instrumentation or faults
  at one site never perturbs the stream of another.

Every injected fault is tallied locally (``injector.counts``) and, when
the :mod:`repro.obs` registry is enabled, mirrored into
``faults.injected[<kind>]`` counters so fault activity shows up in run
reports, metrics JSON, and Chrome traces next to the timing spans.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Optional

from .. import obs
from .spec import (
    BANDWIDTH_DEGRADE,
    DRAM_STALL,
    STAGE_STALL,
    TRANSFER_CORRUPT,
    FaultPlan,
    FaultSpec,
)


class FaultInjector:
    """Resolves a fault plan into deterministic per-site decisions."""

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan if plan is not None else FaultPlan()
        self.counts: Dict[str, int] = {}
        self._streams: Dict[str, random.Random] = {}

    # -- stream plumbing -------------------------------------------------------

    def _stream(self, kind: str, site: str) -> random.Random:
        key = f"{kind}/{site}"
        stream = self._streams.get(key)
        if stream is None:
            seed = zlib.crc32(f"{self.plan.seed}/{key}".encode())
            stream = self._streams[key] = random.Random(seed)
        return stream

    def _trip(self, spec: FaultSpec, site: str) -> bool:
        if self._stream(spec.kind, site).random() >= spec.param("p"):
            return False
        self._count(spec.kind)
        return True

    def _count(self, kind: str, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n
        obs.add_counter(f"faults.injected[{kind}]", n)
        # mirror into the columnar event store: the timeline view shows
        # *when* a fault burst hit, which one final total cannot
        obs.emit_event(f"faults.injected[{kind}]", float(n))

    # -- decision API ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return bool(self.plan.specs)

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def transfer_stalls(self, site: str) -> int:
        """``dram_stall``: cycles this transfer attempt wastes stalled,
        or 0 when the attempt succeeds."""
        spec = self.plan.spec(DRAM_STALL)
        if spec is None or not self._trip(spec, site):
            return 0
        return spec.param("cycles")

    def corrupts(self, site: str) -> bool:
        """``transfer_corrupt``: whether this DRAM read arrives corrupted."""
        spec = self.plan.spec(TRANSFER_CORRUPT)
        return spec is not None and self._trip(spec, site)

    def stage_stall_cycles(self, stage_name: str, site: str) -> int:
        """``stage_stall``: extra cycles for one stage execution."""
        spec = self.plan.spec(STAGE_STALL)
        if spec is None:
            return 0
        only = spec.param("stage")
        if only is not None and only != stage_name:
            return 0
        if not self._trip(spec, site):
            return 0
        return spec.param("cycles")

    def bandwidth_factor(self, cycle: int) -> float:
        """``bandwidth_degrade``: channel throughput multiplier at ``cycle``."""
        spec = self.plan.spec(BANDWIDTH_DEGRADE)
        if spec is None or cycle < spec.param("after_cycle"):
            return 1.0
        if BANDWIDTH_DEGRADE not in self.counts:
            self._count(BANDWIDTH_DEGRADE)  # tally activation once per run
        return spec.param("factor")

    # -- resilience bookkeeping ------------------------------------------------

    def record_retry(self, site: str, backoff_cycles: int = 0) -> None:
        """Tally one retry (and its backoff) triggered by an injected fault."""
        self.counts["retries"] = self.counts.get("retries", 0) + 1
        obs.add_counter("faults.retries")
        if backoff_cycles:
            obs.add_counter("faults.backoff_cycles", backoff_cycles)

    def record_refetch(self, site: str) -> None:
        """Tally one corruption-repair re-fetch from DRAM."""
        self.counts["refetches"] = self.counts.get("refetches", 0) + 1
        obs.add_counter("faults.refetches")
