"""The fault-plan DSL: parse ``kind:key=val,...`` specs into a plan.

A *fault plan* is a deterministic, seedable description of everything
that may go wrong during a run. Plans are built from a tiny text grammar
(one spec per fault kind, ``;``-separated) so they travel through CLI
flags, CI job definitions, and test parametrization unchanged::

    dram_stall:p=0.01,cycles=64
    bandwidth_degrade:factor=0.5,after_cycle=10000
    stage_stall:p=0.02,cycles=32,stage=conv1
    transfer_corrupt:p=0.05
    dram_stall:p=0.05;transfer_corrupt:p=0.02      # combined plan

Supported kinds and their parameters (all optional, with defaults):

``dram_stall``
    Each DRAM transfer independently *fails* with probability ``p`` and
    must be retried; every failed attempt wastes ``cycles`` on the
    channel before the retry (plus the retry policy's backoff).
``bandwidth_degrade``
    From ``after_cycle`` onward the channel serves ``factor`` times its
    nominal words/cycle (0 < factor <= 1).
``stage_stall``
    A pipeline stage execution stalls with probability ``p`` for
    ``cycles`` extra cycles; ``stage`` (optional) restricts the fault to
    stages whose name matches exactly.
``transfer_corrupt``
    A DRAM read (executor input fetch, cache line fill) arrives
    corrupted with probability ``p``. Corruption is always *detected*
    (checksum model) and repaired by a bounded re-fetch.

Probabilities are resolved by :class:`~repro.faults.injector.FaultInjector`
from deterministic per-site streams derived from the plan ``seed``, so
the same plan and seed always injects the same faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigError

DRAM_STALL = "dram_stall"
BANDWIDTH_DEGRADE = "bandwidth_degrade"
STAGE_STALL = "stage_stall"
TRANSFER_CORRUPT = "transfer_corrupt"

#: kind -> {param: (converter, default)}
_SCHEMAS: Dict[str, Dict[str, Tuple[Any, Any]]] = {
    DRAM_STALL: {"p": (float, 0.01), "cycles": (int, 64)},
    BANDWIDTH_DEGRADE: {"factor": (float, 0.5), "after_cycle": (int, 0)},
    STAGE_STALL: {"p": (float, 0.01), "cycles": (int, 32), "stage": (str, None)},
    TRANSFER_CORRUPT: {"p": (float, 0.05)},
}


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault clause: a kind plus its validated parameters."""

    kind: str
    params: Tuple[Tuple[str, Any], ...]

    def param(self, name: str) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)

    def __str__(self) -> str:
        body = ",".join(f"{k}={v}" for k, v in self.params if v is not None)
        return f"{self.kind}:{body}" if body else self.kind


def _parse_clause(clause: str) -> FaultSpec:
    kind, _, body = clause.partition(":")
    kind = kind.strip()
    if kind not in _SCHEMAS:
        raise ConfigError(
            f"unknown fault kind {kind!r}", known=sorted(_SCHEMAS), spec=clause)
    schema = _SCHEMAS[kind]
    values = {name: default for name, (_, default) in schema.items()}
    if body.strip():
        for assignment in body.split(","):
            name, eq, raw = assignment.partition("=")
            name = name.strip()
            if not eq or name not in schema:
                raise ConfigError(
                    f"bad parameter {assignment.strip()!r} for fault {kind!r}",
                    allowed=sorted(schema), spec=clause)
            converter, _ = schema[name]
            try:
                values[name] = converter(raw.strip())
            except (TypeError, ValueError):
                raise ConfigError(
                    f"parameter {name!r} of fault {kind!r} expects "
                    f"{converter.__name__}, got {raw.strip()!r}", spec=clause)
    _validate(kind, values, clause)
    return FaultSpec(kind=kind, params=tuple(sorted(values.items())))


def _validate(kind: str, values: Dict[str, Any], clause: str) -> None:
    p = values.get("p")
    if p is not None and not 0.0 <= p <= 1.0:
        raise ConfigError(f"fault {kind!r}: p must be in [0, 1]", p=p, spec=clause)
    cycles = values.get("cycles")
    if cycles is not None and cycles < 0:
        raise ConfigError(f"fault {kind!r}: cycles must be non-negative",
                          cycles=cycles, spec=clause)
    if kind == BANDWIDTH_DEGRADE:
        factor = values["factor"]
        if not 0.0 < factor <= 1.0:
            raise ConfigError("bandwidth_degrade: factor must be in (0, 1]",
                              factor=factor, spec=clause)
        if values["after_cycle"] < 0:
            raise ConfigError("bandwidth_degrade: after_cycle must be >= 0",
                              after_cycle=values["after_cycle"], spec=clause)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable collection of fault specs.

    ``specs`` holds at most one spec per kind (later clauses override
    earlier ones, so a base plan can be specialized by appending).
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``;``-separated spec string into a plan."""
        if not isinstance(text, str) or not text.strip():
            raise ConfigError("empty fault spec", spec=text)
        by_kind: Dict[str, FaultSpec] = {}
        for clause in text.split(";"):
            if clause.strip():
                spec = _parse_clause(clause.strip())
                by_kind[spec.kind] = spec
        return cls(specs=tuple(by_kind.values()), seed=seed)

    def spec(self, kind: str) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.kind == kind:
                return spec
        return None

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(spec.kind for spec in self.specs)

    def injector(self):
        """A fresh :class:`~repro.faults.injector.FaultInjector` for one run."""
        from .injector import FaultInjector

        return FaultInjector(self)

    def __str__(self) -> str:
        return ";".join(str(spec) for spec in self.specs) or "<no faults>"
