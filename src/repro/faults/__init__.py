"""repro.faults — deterministic fault injection and resilience machinery.

The robustness substrate for the reproduction: a seedable fault-plan DSL
(:mod:`repro.faults.spec`), a deterministic decision engine
(:mod:`repro.faults.injector`) that the memory channel, pipeline, cache,
and fused executor consult, bounded retry-with-exponential-backoff
(:mod:`repro.faults.retry`), and graceful-degradation budgets for the
explorer (:mod:`repro.faults.budget`).

Typical use::

    from repro.faults import FaultPlan, RetryPolicy

    plan = FaultPlan.parse("dram_stall:p=0.05;transfer_corrupt:p=0.02", seed=7)
    fused = FusedExecutor(levels, faults=plan.injector(),
                          retry=RetryPolicy(max_attempts=4))

or from the CLI, position-independently on any subcommand::

    python -m repro faultsim alexnet --faults dram_stall:p=0.05 --seed 7
    python -m repro stats vgg --faults transfer_corrupt:p=0.02 --profile

The process-global *active plan* (:func:`set_active_plan` /
:func:`get_active_plan`) is how the CLI's ``--faults`` flag reaches the
subcommands; library code should pass injectors explicitly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .budget import ExplorationBudget
from .injector import FaultInjector
from .retry import RetryPolicy
from .spec import (
    BANDWIDTH_DEGRADE,
    DRAM_STALL,
    STAGE_STALL,
    TRANSFER_CORRUPT,
    FaultPlan,
    FaultSpec,
)

_ACTIVE_PLAN: Optional[FaultPlan] = None


def set_active_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or clear, with ``None``) the process-global fault plan."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def get_active_plan() -> Optional[FaultPlan]:
    """The process-global fault plan, or None when faults are off."""
    return _ACTIVE_PLAN


@contextmanager
def active_plan(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Scope the global plan to a block, restoring the prior one after."""
    prior = _ACTIVE_PLAN
    set_active_plan(plan)
    try:
        yield plan
    finally:
        set_active_plan(prior)


__all__ = [
    "BANDWIDTH_DEGRADE",
    "DRAM_STALL",
    "STAGE_STALL",
    "TRANSFER_CORRUPT",
    "ExplorationBudget",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "active_plan",
    "get_active_plan",
    "set_active_plan",
]
