"""Bounded retry with exponential backoff for failed transfers.

The memory channel, the tile cache, and the fused executor all repair
injected faults the same way: retry a bounded number of times, waiting
``base_cycles * multiplier**(attempt-1)`` (capped) between attempts.
When the budget runs out they raise
:class:`~repro.errors.SimFaultError` — a fault that survives every
retry is a *diagnosed* failure, never silent corruption.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, SimFaultError

#: Default policy used whenever faults are injected without an explicit one.
DEFAULT_MAX_ATTEMPTS = 4


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget (cycles are simulated time).

    ``max_attempts`` counts *total* tries, the first included; backoff is
    charged before each retry, growing geometrically from ``base_cycles``
    up to ``max_backoff_cycles``.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base_cycles: int = 8
    multiplier: float = 2.0
    max_backoff_cycles: int = 1024

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("retry policy needs max_attempts >= 1",
                              max_attempts=self.max_attempts)
        if self.base_cycles < 0 or self.max_backoff_cycles < 0:
            raise ConfigError("retry backoff cycles must be non-negative",
                              base_cycles=self.base_cycles,
                              max_backoff_cycles=self.max_backoff_cycles)
        if self.multiplier < 1.0:
            raise ConfigError("retry multiplier must be >= 1",
                              multiplier=self.multiplier)

    def backoff_cycles(self, attempt: int) -> int:
        """Backoff charged before retry number ``attempt`` (1-based: the
        first retry is attempt 1)."""
        if attempt < 1:
            raise ConfigError("backoff attempt is 1-based", attempt=attempt)
        return min(int(self.base_cycles * self.multiplier ** (attempt - 1)),
                   self.max_backoff_cycles)

    def exhausted(self, site: str, kind: str, **context) -> SimFaultError:
        """The error raised when every attempt failed."""
        return SimFaultError(
            f"{kind} fault at {site} persisted through {self.max_attempts} "
            "attempts", site=site, kind=kind,
            max_attempts=self.max_attempts, **context)
