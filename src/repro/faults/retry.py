"""Bounded retry with exponential backoff for failed transfers.

The memory channel, the tile cache, and the fused executor all repair
injected faults the same way: retry a bounded number of times, waiting
``base_cycles * multiplier**(attempt-1)`` (capped) between attempts.
When the budget runs out they raise
:class:`~repro.errors.SimFaultError` — a fault that survives every
retry is a *diagnosed* failure, never silent corruption.

Backoff can carry **deterministic seeded jitter**: with ``jitter > 0``,
each (site, attempt) pair perturbs its backoff by up to ±``jitter``/2
of the nominal value, drawn from a stream seeded by
``crc32(f"{seed}/{site}/{attempt}")`` — the same per-site scheme the
:class:`~repro.faults.injector.FaultInjector` uses. Sites retrying the
same fault kind therefore spread out instead of thundering back in
lockstep, while the same seed reproduces the exact same backoff
sequence byte for byte. The default ``jitter=0.0`` keeps the classic
deterministic schedule unchanged.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from ..errors import ConfigError, SimFaultError

#: Default policy used whenever faults are injected without an explicit one.
DEFAULT_MAX_ATTEMPTS = 4


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget (cycles are simulated time).

    ``max_attempts`` counts *total* tries, the first included; backoff is
    charged before each retry, growing geometrically from ``base_cycles``
    up to ``max_backoff_cycles``. ``jitter`` (0..1) is the fraction of
    each backoff randomized around its nominal value, decorrelated per
    retry site and attempt from ``seed``.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base_cycles: int = 8
    multiplier: float = 2.0
    max_backoff_cycles: int = 1024
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("retry policy needs max_attempts >= 1",
                              max_attempts=self.max_attempts)
        if self.base_cycles < 0 or self.max_backoff_cycles < 0:
            raise ConfigError("retry backoff cycles must be non-negative",
                              base_cycles=self.base_cycles,
                              max_backoff_cycles=self.max_backoff_cycles)
        if self.multiplier < 1.0:
            raise ConfigError("retry multiplier must be >= 1",
                              multiplier=self.multiplier)
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("retry jitter must be in [0, 1]",
                              jitter=self.jitter)

    def backoff_cycles(self, attempt: int, site: str = "") -> int:
        """Backoff charged before retry number ``attempt`` (1-based: the
        first retry is attempt 1). ``site`` keys the jitter stream, so
        different retry sites decorrelate while the same (seed, site,
        attempt) always yields the same backoff."""
        if attempt < 1:
            raise ConfigError("backoff attempt is 1-based", attempt=attempt)
        nominal = min(int(self.base_cycles * self.multiplier ** (attempt - 1)),
                      self.max_backoff_cycles)
        if self.jitter <= 0.0 or nominal <= 0:
            return nominal
        stream = random.Random(
            zlib.crc32(f"{self.seed}/{site}/{attempt}".encode()))
        offset = self.jitter * (stream.random() - 0.5)  # +- jitter/2
        jittered = int(round(nominal * (1.0 + offset)))
        return max(0, min(jittered, self.max_backoff_cycles))

    def exhausted(self, site: str, kind: str, **context) -> SimFaultError:
        """The error raised when every attempt failed."""
        return SimFaultError(
            f"{kind} fault at {site} persisted through {self.max_attempts} "
            "attempts", site=site, kind=kind,
            max_attempts=self.max_attempts, **context)
