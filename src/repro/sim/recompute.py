"""The recompute-strategy executor (Section III-C's alternative).

Where the reuse strategy stores inter-pyramid overlap in BL/BT buffers,
the recompute strategy re-derives every intermediate value each pyramid
needs: "Recomputing the values obviously adds extra arithmetic
operations, but has the advantage of simplicity; each pyramid's internal
dataflow is the same."

Each pyramid therefore evaluates its complete clamped footprint from the
input up, with no intermediate state carried between pyramids. The only
retained data is an input *line buffer* (the last ``base_h`` rows of the
input, full width) so the input is still read from DRAM exactly once —
the strategy trades arithmetic, not bandwidth.

The executor's operation counter reproduces
:func:`repro.core.costs.recompute_ops` exactly, tying the analytic model
of Section III-B to executed arithmetic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pyramid import build_pyramid, position_footprint
from ..nn.shapes import ShapeError
from ..nn.stages import Level
from . import ops
from .trace import TrafficTrace
from .weights import make_level_weights


class InputLineBuffer:
    """Rolling buffer of the last ``rows`` padded input rows, full width.

    Reads outside the resident row window raise, machine-checking that
    the recompute schedule's input locality fits the buffer the paper's
    accelerator would provision.
    """

    def __init__(self, x: np.ndarray, pad: int, rows: int,
                 trace: TrafficTrace, dtype):
        self._x = x
        self._pad = pad
        self._rows = rows
        self._trace = trace
        self._dtype = dtype
        channels = x.shape[0]
        self._wp = x.shape[2] + 2 * pad
        self._hp = x.shape[1] + 2 * pad
        self._buffer = np.zeros((channels, rows, self._wp), dtype=dtype)
        self._row_lo = 0  # absolute padded row of buffer slot 0
        self._loaded = 0  # padded rows materialized so far

    @property
    def capacity_elements(self) -> int:
        return self._buffer.size

    def _load_through(self, row_hi: int) -> None:
        """Slide the buffer down until padded rows [.., row_hi) are resident."""
        if row_hi > self._hp:
            raise ShapeError(f"input row {row_hi} beyond padded height {self._hp}")
        while self._loaded < row_hi:
            row = self._loaded
            if row >= self._row_lo + self._rows:
                shift = row - (self._row_lo + self._rows) + 1
                self._buffer[:, :-shift] = self._buffer[:, shift:]
                self._row_lo += shift
            slot = row - self._row_lo
            real = row - self._pad
            if 0 <= real < self._x.shape[1]:
                self._buffer[:, slot, self._pad:self._wp - self._pad] = self._x[:, real]
                self._buffer[:, slot, :self._pad] = 0
                self._buffer[:, slot, self._wp - self._pad:] = 0
                self._trace.read("input", self._x.shape[2] * self._x.shape[0])
            else:
                self._buffer[:, slot] = 0
            self._loaded += 1

    def window(self, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """Padded-coordinate block, loading fresh rows from DRAM as needed."""
        self._load_through(r1)
        if r0 < self._row_lo:
            raise ShapeError(
                f"input row {r0} evicted from the line buffer (holds "
                f"[{self._row_lo}, {self._row_lo + self._rows}))"
            )
        lo = r0 - self._row_lo
        return self._buffer[:, lo:lo + (r1 - r0), c0:c1]


class RecomputeExecutor:
    """Evaluates a fused group by full per-pyramid recomputation."""

    def __init__(self, levels: Sequence[Level],
                 params: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
                 tip_h: int = 1, tip_w: int = 1, seed: int = 0,
                 integer: bool = False, dtype=None):
        if dtype is None:
            dtype = np.float64 if integer else np.float32
        self.levels = list(levels)
        if not self.levels:
            raise ShapeError("cannot execute zero levels")
        self.params = params if params is not None else make_level_weights(
            self.levels, seed=seed, integer=integer)
        self.tip_h = tip_h
        self.tip_w = tip_w
        self.dtype = dtype
        self.geometry = build_pyramid(self.levels, tip_h, tip_w)
        self.line_buffer_elements = 0

    def run(self, x: np.ndarray, trace: Optional[TrafficTrace] = None) -> np.ndarray:
        first = self.levels[0]
        shape = first.in_shape
        if x.shape != (shape.channels, shape.height, shape.width):
            raise ShapeError(f"input shape {x.shape} != expected {shape}")
        trace = trace if trace is not None else TrafficTrace()
        x = np.asarray(x, dtype=self.dtype)
        line = InputLineBuffer(x, first.pad, self.geometry.base_h, trace, self.dtype)
        self.line_buffer_elements = line.capacity_elements

        final = self.levels[-1].out_shape
        out = np.zeros((final.channels, final.height, final.width), dtype=self.dtype)
        rows, cols = self.geometry.num_positions
        for r in range(rows):
            for c in range(cols):
                block, box = self._run_pyramid(line, r, c, trace)
                r0, r1, c0, c1 = box
                out[:, r0:r1, c0:c1] = block
                trace.write("output", block.size)
        return out

    def _run_pyramid(self, line: InputLineBuffer, r: int, c: int,
                     trace: TrafficTrace):
        footprint = position_footprint(self.levels, r, c, self.tip_h, self.tip_w)
        current: Optional[np.ndarray] = None
        current_box: Optional[Tuple[int, int, int, int]] = None
        for level, box in zip(self.levels, footprint.out_ranges):
            r0, r1, c0, c1 = box
            # Padded input window this level needs for output [r0,r1)x[c0,c1).
            w_r0, w_r1 = r0 * level.stride, (r1 - 1) * level.stride + level.kernel
            w_c0, w_c1 = c0 * level.stride, (c1 - 1) * level.stride + level.kernel
            if current is None:
                window = line.window(w_r0, w_r1, w_c0, w_c1)
            else:
                window = self._frame(level, current, current_box,
                                     w_r0, w_r1, w_c0, w_c1)
            if level.is_conv:
                w, b = self.params[level.name]
                block = ops.conv2d(window, w, b, stride=level.stride,
                                   groups=level.groups)
            elif level.pool_mode == "max":
                block = ops.maxpool2d(window, level.kernel, level.stride)
            else:
                block = ops.avgpool2d(window, level.kernel, level.stride)
            if level.has_relu:
                block = ops.relu(block)
            expect = (level.out_channels, r1 - r0, c1 - c0)
            if block.shape != expect:
                raise ShapeError(f"{level.name}: block {block.shape} != {expect}")
            trace.compute(level.name, block.size * level.ops_per_output)
            current, current_box = block, box
        assert current is not None and current_box is not None
        return current, current_box

    def _frame(self, level: Level, produced: np.ndarray,
               produced_box: Tuple[int, int, int, int],
               r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """Place the producer's computed block into this level's padded
        input window, zero-filling padding borders."""
        pad = level.pad
        pr0, pr1, pc0, pc1 = produced_box
        window = np.zeros((produced.shape[0], r1 - r0, c1 - c0), dtype=self.dtype)
        in_shape = level.in_shape
        u_r0 = min(max(r0 - pad, 0), in_shape.height)
        u_r1 = min(max(r1 - pad, 0), in_shape.height)
        u_c0 = min(max(c0 - pad, 0), in_shape.width)
        u_c1 = min(max(c1 - pad, 0), in_shape.width)
        if (u_r0, u_r1, u_c0, u_c1) != (pr0, pr1, pc0, pc1):
            raise ShapeError(
                f"{level.name}: producer block {produced_box} does not match "
                f"window demand {(u_r0, u_r1, u_c0, u_c1)}"
            )
        window[:, pad + pr0 - r0:pad + pr1 - r0,
               pad + pc0 - c0:pad + pc1 - c0] = produced
        return window
