"""Execute a fusion partition end to end: fused groups chained via DRAM.

The exploration tool scores partitions; this executor *runs* them — one
:class:`~repro.sim.fused.FusedExecutor` per group, handing each boundary
feature map through (traced) DRAM, exactly the multi-pyramid
organization of Figure 4. The measured traffic equals the partition
analysis's prediction and the output is bit-identical to a monolithic
layer-by-layer evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.shapes import ShapeError
from ..nn.stages import Level
from .fused import FusedExecutor
from .trace import TrafficTrace
from .weights import make_level_weights


class PartitionedExecutor:
    """Runs ``levels`` split into fused groups of the given ``sizes``.

    ``tip_h``/``tip_w`` apply per group (clamped to each group's output
    map). A size-1 group degenerates to plain layer-at-a-time execution
    of that level — so ``sizes=(1,)*n`` reproduces the traditional
    schedule and ``sizes=(n,)`` the fully fused one.
    """

    def __init__(self, levels: Sequence[Level], sizes: Sequence[int],
                 params: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
                 tip_h: int = 1, tip_w: int = 1, seed: int = 0,
                 integer: bool = False):
        if sum(sizes) != len(levels):
            raise ShapeError(f"sizes {tuple(sizes)} do not cover {len(levels)} levels")
        if any(size <= 0 for size in sizes):
            raise ShapeError("group sizes must be positive")
        self.levels = list(levels)
        self.sizes = tuple(sizes)
        self.params = params if params is not None else make_level_weights(
            self.levels, seed=seed, integer=integer)
        self.groups: List[FusedExecutor] = []
        start = 0
        for size in sizes:
            group = self.levels[start:start + size]
            final = group[-1].out_shape
            self.groups.append(
                FusedExecutor(group, params=self.params,
                              tip_h=min(tip_h, final.height),
                              tip_w=min(tip_w, final.width),
                              integer=integer)
            )
            start += size

    @property
    def boundary_shapes(self):
        """Shapes of the maps staged through DRAM between groups."""
        return [g.levels[-1].out_shape for g in self.groups[:-1]]

    def run(self, x: np.ndarray, trace: Optional[TrafficTrace] = None) -> np.ndarray:
        """Evaluate all groups; boundary traffic lands in ``trace`` via
        each group's own input-read / output-write accounting."""
        current = x
        for group in self.groups:
            current = group.run(current, trace)
        return current

    @property
    def buffer_bytes(self) -> int:
        """Peak on-chip reuse-buffer footprint (groups run one at a time,
        so the maximum group governs a time-multiplexed engine; the sum
        governs spatially separate engines)."""
        return max(g.buffer_bytes for g in self.groups)

    @property
    def total_buffer_bytes(self) -> int:
        return sum(g.buffer_bytes for g in self.groups)
