"""DRAM-traffic and compute tracing for the simulators.

The accelerator's figure of merit is bytes crossing the chip boundary per
image. Both executors report their traffic through a :class:`TrafficTrace`
so schedules can be compared event-by-event in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..nn.shapes import BYTES_PER_WORD


@dataclass
class TrafficTrace:
    """Accumulates off-chip transfer and on-chip compute events."""

    events: List[Tuple[str, str, int]] = field(default_factory=list)
    dram_read_elements: int = 0
    dram_write_elements: int = 0
    macs: int = 0
    ops: int = 0

    def read(self, label: str, elements: int) -> None:
        """Record ``elements`` words read from DRAM."""
        self.dram_read_elements += elements
        self.events.append(("read", label, elements))

    def write(self, label: str, elements: int) -> None:
        """Record ``elements`` words written to DRAM."""
        self.dram_write_elements += elements
        self.events.append(("write", label, elements))

    def compute(self, label: str, ops: int) -> None:
        """Record arithmetic operations (multiplies + adds)."""
        self.ops += ops
        self.events.append(("compute", label, ops))

    @property
    def dram_read_bytes(self) -> int:
        return self.dram_read_elements * BYTES_PER_WORD

    @property
    def dram_write_bytes(self) -> int:
        return self.dram_write_elements * BYTES_PER_WORD

    @property
    def dram_total_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    def reads_for(self, label: str) -> int:
        return sum(n for kind, lbl, n in self.events if kind == "read" and lbl == label)

    def writes_for(self, label: str) -> int:
        return sum(n for kind, lbl, n in self.events if kind == "write" and lbl == label)

    def summary(self) -> str:
        return (
            f"DRAM read {self.dram_read_bytes / 2**20:.3f} MB, "
            f"write {self.dram_write_bytes / 2**20:.3f} MB, "
            f"compute {self.ops / 1e6:.1f} Mops"
        )
