"""DRAM-traffic and compute tracing for the simulators.

The accelerator's figure of merit is bytes crossing the chip boundary per
image. Both executors report their traffic through a :class:`TrafficTrace`
so schedules can be compared event-by-event in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..nn.shapes import BYTES_PER_WORD

_MB = 2 ** 20


@dataclass
class TrafficTrace:
    """Accumulates off-chip transfer and on-chip compute events."""

    events: List[Tuple[str, str, int]] = field(default_factory=list)
    dram_read_elements: int = 0
    dram_write_elements: int = 0
    macs: int = 0
    ops: int = 0

    def read(self, label: str, elements: int) -> None:
        """Record ``elements`` words read from DRAM."""
        self.dram_read_elements += elements
        self.events.append(("read", label, elements))

    def write(self, label: str, elements: int) -> None:
        """Record ``elements`` words written to DRAM."""
        self.dram_write_elements += elements
        self.events.append(("write", label, elements))

    def compute(self, label: str, ops: int, macs: int = -1) -> None:
        """Record arithmetic operations (multiplies + adds).

        ``macs`` defaults to ``ops // 2`` — one multiply plus one add per
        multiply-accumulate, the convention the energy model uses.
        """
        self.ops += ops
        self.macs += macs if macs >= 0 else ops // 2
        self.events.append(("compute", label, ops))

    @property
    def dram_read_bytes(self) -> int:
        return self.dram_read_elements * BYTES_PER_WORD

    @property
    def dram_write_bytes(self) -> int:
        return self.dram_write_elements * BYTES_PER_WORD

    @property
    def dram_total_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def dram_read_mb(self) -> float:
        return self.dram_read_bytes / _MB

    @property
    def dram_write_mb(self) -> float:
        return self.dram_write_bytes / _MB

    @property
    def dram_total_mb(self) -> float:
        """Total off-chip traffic in MB (read + write)."""
        return self.dram_total_bytes / _MB

    def reads_for(self, label: str) -> int:
        return sum(n for kind, lbl, n in self.events if kind == "read" and lbl == label)

    def writes_for(self, label: str) -> int:
        return sum(n for kind, lbl, n in self.events if kind == "write" and lbl == label)

    def by_label(self) -> Dict[str, Tuple[int, int, int]]:
        """Per-label totals: ``{label: (read_bytes, write_bytes, ops)}``."""
        totals: Dict[str, List[int]] = {}
        for kind, label, n in self.events:
            entry = totals.setdefault(label, [0, 0, 0])
            if kind == "read":
                entry[0] += n * BYTES_PER_WORD
            elif kind == "write":
                entry[1] += n * BYTES_PER_WORD
            else:
                entry[2] += n
        return {label: tuple(entry) for label, entry in totals.items()}

    def summary(self) -> str:
        return (
            f"DRAM read {self.dram_read_mb:.3f} MB, "
            f"write {self.dram_write_mb:.3f} MB "
            f"(total {self.dram_total_mb:.3f} MB), "
            f"compute {self.ops / 1e6:.1f} Mops ({self.macs / 1e6:.1f} MMACs)"
        )
