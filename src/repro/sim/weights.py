"""Deterministic synthetic weights for simulation and testing.

The paper evaluates dataflow, not accuracy, so weight *values* are
irrelevant — only their shapes matter. We generate reproducible random
weights per layer from a seeded generator. ``integer=True`` produces
small-integer weights so fused and layer-by-layer schedules can be
compared bit-exactly (float32 summation order differences vanish).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..nn.layers import ConvSpec, FCSpec
from ..errors import ConfigError
from ..nn.network import Network
from ..nn.stages import Level


def conv_weight_shape(level: Level) -> Tuple[int, int, int, int]:
    """Weight tensor shape for a conv level: (M, N // groups, K, K)."""
    if not level.is_conv:
        raise ConfigError(f"{level.name} is not a convolution", level=level.name)
    return (
        level.out_channels,
        level.in_channels // level.groups,
        level.kernel,
        level.kernel,
    )


def make_level_weights(levels, seed: int = 0, integer: bool = False,
                       dtype=None) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Weights and biases for every conv level, keyed by level name.

    Integer mode defaults to float64 storage: integer-valued activations
    can exceed float32's 2^24 exact range after a few wide layers, which
    would make summation order observable; float64 keeps bit-exact
    comparison between schedules meaningful.
    """
    if dtype is None:
        dtype = np.float64 if integer else np.float32
    rng = np.random.default_rng(seed)
    params: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for level in levels:
        if not level.is_conv:
            continue
        shape = conv_weight_shape(level)
        if integer:
            w = rng.integers(-2, 3, size=shape).astype(dtype)
            b = rng.integers(-2, 3, size=(level.out_channels,)).astype(dtype)
        else:
            fan_in = shape[1] * shape[2] * shape[3]
            w = (rng.standard_normal(shape) / np.sqrt(fan_in)).astype(dtype)
            b = (rng.standard_normal(level.out_channels) * 0.1).astype(dtype)
        params[level.name] = (w, b)
    return params


def make_input(shape, seed: int = 0, integer: bool = False,
               dtype=None) -> np.ndarray:
    """A deterministic input volume of the given :class:`TensorShape`."""
    if dtype is None:
        dtype = np.float64 if integer else np.float32
    rng = np.random.default_rng(seed + 1_000_003)
    dims = (shape.channels, shape.height, shape.width)
    if integer:
        return rng.integers(-3, 4, size=dims).astype(dtype)
    return rng.standard_normal(dims).astype(dtype)


def save_params(path, params: Dict[str, Tuple[np.ndarray, np.ndarray]]) -> None:
    """Persist a ``{name: (weights, bias)}`` dict as a ``.npz`` archive.

    Keys are stored as ``<name>.weight`` / ``<name>.bias`` — the naming
    convention most framework exporters can produce, so real trained
    weights can be run through the simulators.
    """
    arrays = {}
    for name, (w, b) in params.items():
        arrays[f"{name}.weight"] = w
        arrays[f"{name}.bias"] = b
    np.savez(path, **arrays)


def load_params(path, levels=None,
                dtype=None) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Load ``{name: (weights, bias)}`` from a ``.npz`` archive.

    When ``levels`` is given, every conv level must be present with the
    exact shape :func:`conv_weight_shape` expects; a mismatch raises
    ``ValueError`` naming the offending layer rather than failing deep in
    a convolution.
    """
    archive = np.load(path)
    params: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for key in archive.files:
        if not key.endswith(".weight"):
            continue
        name = key[: -len(".weight")]
        w = archive[key]
        bias_key = f"{name}.bias"
        if bias_key not in archive.files:
            raise ConfigError(f"{name}: archive has weights but no bias", layer=name)
        b = archive[bias_key]
        if dtype is not None:
            w = w.astype(dtype)
            b = b.astype(dtype)
        params[name] = (w, b)
    if levels is not None:
        for level in levels:
            if not level.is_conv:
                continue
            if level.name not in params:
                raise ConfigError(f"{level.name}: missing from weight archive", level=level.name)
            expected = conv_weight_shape(level)
            got = params[level.name][0].shape
            if tuple(got) != expected:
                raise ConfigError(
                    f"{level.name}: weight shape {got} != expected {expected}",
                    level=level.name,
                )
            if params[level.name][1].shape != (level.out_channels,):
                raise ConfigError(f"{level.name}: bias shape mismatch", level=level.name)
    return params


def make_network_weights(network: Network, seed: int = 0,
                         integer: bool = False) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Weights for every parameterized layer of a full network (conv + FC)."""
    rng = np.random.default_rng(seed)
    params: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for binding in network:
        spec = binding.spec
        if isinstance(spec, ConvSpec):
            shape = (
                spec.out_channels,
                binding.input_shape.channels // spec.groups,
                spec.kernel,
                spec.kernel,
            )
        elif isinstance(spec, FCSpec):
            shape = (spec.out_features, binding.input_shape.elements)
        else:
            continue
        if integer:
            w = rng.integers(-2, 3, size=shape).astype(np.float32)
            b = rng.integers(-2, 3, size=(shape[0],)).astype(np.float32)
        else:
            fan_in = int(np.prod(shape[1:]))
            w = (rng.standard_normal(shape) / np.sqrt(fan_in)).astype(np.float32)
            b = (rng.standard_normal(shape[0]) * 0.1).astype(np.float32)
        params[spec.name] = (w, b)
    return params
