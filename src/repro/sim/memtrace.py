"""Element-level memory traces of the two schedules (for cache studies).

Both generators emit exactly the same multiset of accesses — one read
per operand of every multiply-accumulate, plus weight reads and one
write per output element — differing only in *order*: the layer-by-layer
trace finishes each map before starting the next, while the fused trace
interleaves levels pyramid by pyramid. Replaying both through
:class:`~repro.sim.cache.CacheSim` isolates the locality effect behind
the paper's Section VI-C CPU speedup.

Address map: fp32 elements; the input map, every level's output map, and
every level's weights get disjoint line-aligned regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..nn.stages import Level
from .fused import plan_levels

WORD = 4


@dataclass(frozen=True)
class AddressMap:
    """Base addresses of every region used by a fused group's schedule."""

    input_base: int
    map_bases: Tuple[int, ...]     # output map of each level
    weight_bases: Tuple[int, ...]  # weights of each level (0 for pools)
    total_bytes: int


def build_address_map(levels: Sequence[Level], line_bytes: int = 64) -> AddressMap:
    def align(x: int) -> int:
        return (x + line_bytes - 1) // line_bytes * line_bytes

    cursor = 0
    input_base = cursor
    cursor = align(cursor + levels[0].in_shape.bytes)
    map_bases: List[int] = []
    weight_bases: List[int] = []
    for level in levels:
        map_bases.append(cursor)
        cursor = align(cursor + level.out_shape.bytes)
        weight_bases.append(cursor)
        cursor = align(cursor + level.weight_count * WORD)
    return AddressMap(input_base=input_base, map_bases=tuple(map_bases),
                      weight_bases=tuple(weight_bases), total_bytes=cursor)


def _element_addr(base: int, channels_extent: Tuple[int, int, int],
                  ch: int, row: int, col: int) -> int:
    _, height, width = channels_extent
    return base + ((ch * height + row) * width + col) * WORD


def _level_block_accesses(levels: Sequence[Level], amap: AddressMap, i: int,
                          r0: int, r1: int, c0: int, c1: int) -> Iterator[Tuple[int, bool]]:
    """Accesses to compute output block [r0,r1)x[c0,c1) of level ``i``:
    window reads (producer map or input), weight reads, output writes."""
    level = levels[i]
    in_shape = level.in_shape
    in_dims = (in_shape.channels, in_shape.height, in_shape.width)
    out_shape = level.out_shape
    out_dims = (out_shape.channels, out_shape.height, out_shape.width)
    src_base = amap.input_base if i == 0 else amap.map_bases[i - 1]
    k, s, pad = level.kernel, level.stride, level.pad
    g_in = level.in_channels // level.groups
    g_out = level.out_channels // level.groups

    for m in range(level.out_channels):
        group = m // g_out if level.is_conv else 0
        for r in range(r0, r1):
            for c in range(c0, c1):
                if level.is_conv:
                    channel_range = range(group * g_in, (group + 1) * g_in)
                else:
                    channel_range = range(m, m + 1)
                for n in channel_range:
                    for ki in range(k):
                        row = r * s + ki - pad
                        if not 0 <= row < in_shape.height:
                            continue
                        for kj in range(k):
                            col = c * s + kj - pad
                            if not 0 <= col < in_shape.width:
                                continue
                            yield (_element_addr(src_base, in_dims, n, row, col),
                                   False)
                            if level.is_conv:
                                local_n = n - group * g_in
                                widx = (((m * g_in + local_n) * k + ki) * k + kj)
                                yield (amap.weight_bases[i] + widx * WORD, False)
                yield (_element_addr(amap.map_bases[i], out_dims, m, r, c), True)


def reference_trace(levels: Sequence[Level],
                    amap: AddressMap) -> Iterator[Tuple[int, bool]]:
    """The layer-by-layer schedule: each level over its full map."""
    for i, level in enumerate(levels):
        out = level.out_shape
        yield from _level_block_accesses(levels, amap, i, 0, out.height,
                                         0, out.width)


def fused_trace(levels: Sequence[Level], amap: AddressMap,
                tip_h: int = 1, tip_w: int = 1) -> Iterator[Tuple[int, bool]]:
    """The fused pyramid schedule: per pyramid, each level's fresh block."""
    plans = plan_levels(levels, tip_h, tip_w)
    rows = len(plans[0].ob_r) - 1
    cols = len(plans[0].ob_c) - 1
    for p in range(rows):
        for q in range(cols):
            for i, plan in enumerate(plans):
                r0, r1 = plan.ob_r[p], plan.ob_r[p + 1]
                c0, c1 = plan.ob_c[q], plan.ob_c[q + 1]
                if r1 <= r0 or c1 <= c0:
                    continue
                yield from _level_block_accesses(levels, amap, i, r0, r1, c0, c1)


def trace_length(trace: Iterator[Tuple[int, bool]]) -> int:
    return sum(1 for _ in trace)
