"""Vectorized batched execution: every layer applied to a whole batch.

:class:`~repro.sim.network_exec.NetworkExecutor.run_batch` loops the
single-image operators — correct for any dtype, but each tiny NumPy call
pays fixed dispatch overhead, which dominates on small networks. This
module provides ``(B, C, H, W)`` implementations of the same operators
so one call evaluates the whole batch; :class:`BatchedNetworkExecutor`
is the per-network wrapper the serving layer's compiled plans use.

**Exactness contract.** In the repo's integer mode (integer-valued
activations and weights stored as float64, the established bit-exact
regime — see :mod:`repro.sim.weights`) batched outputs are bit-identical
to per-item execution: all arithmetic is exact, so reduction order
cannot be observed. In float mode the batched convolution may differ in
final ULPs from the per-item path (BLAS may block the wider matmul
differently), which is why serving plans only select this executor for
``precision="int"`` and fall back to the per-item loop otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..nn.layers import (
    ConvSpec,
    FCSpec,
    LayerSpec,
    LRNSpec,
    PadSpec,
    PoolSpec,
    ReLUSpec,
)
from ..nn.network import Network
from ..nn.shapes import ShapeError, conv_output_extent
from .. import obs
from .weights import make_network_weights


def preserves_exact_arithmetic(network: Network) -> bool:
    """True when every layer keeps integer-mode activations exact.

    Convolution, ReLU, padding, max pooling, and dense layers map
    integer-valued float64 tensors to exactly-representable values, as
    does average pooling with a power-of-two window count (division by a
    power of two is exact). LRN is not exact (``scale ** 0.75`` rounds),
    and a rounded activation makes every downstream reduction
    order-sensitive — so such networks must serve through the per-item
    loop to stay bit-identical.
    """
    for binding in network:
        spec = binding.spec
        if isinstance(spec, LRNSpec):
            return False
        if isinstance(spec, PoolSpec) and spec.mode == "avg":
            count = spec.kernel * spec.kernel
            if count & (count - 1):
                return False
    return True


def pad2d_batched(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of a (B, C, H, W) batch."""
    if pad < 0:
        raise ShapeError(f"padding must be non-negative, got {pad}")
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))


def _windows_batched(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """View of all K x K windows: shape (B, C, OH, OW, K, K)."""
    out_h = conv_output_extent(x.shape[2], kernel, stride)
    out_w = conv_output_extent(x.shape[3], kernel, stride)
    view = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel),
                                                    axis=(2, 3))
    return view[:, :, ::stride, ::stride][:, :, :out_h, :out_w]


def conv2d_batched(x: np.ndarray, weights: np.ndarray,
                   bias: "np.ndarray | None" = None,
                   stride: int = 1, pad: int = 0, groups: int = 1) -> np.ndarray:
    """Batched 2-D convolution over (B, C, H, W), one tensordot per group."""
    x = pad2d_batched(x, pad)
    m, n_per_group, kh, kw = weights.shape
    if kh != kw:
        raise ShapeError("only square kernels are supported")
    if x.shape[1] != n_per_group * groups:
        raise ShapeError(
            f"input channels {x.shape[1]} != weights {n_per_group} x groups {groups}"
        )
    if m % groups != 0:
        raise ShapeError(f"output channels {m} not divisible by groups {groups}")

    windows = _windows_batched(x, kh, stride)  # (B, N, OH, OW, K, K)
    m_per_group = m // groups
    outputs = []
    for g in range(groups):
        w_g = weights[g * m_per_group:(g + 1) * m_per_group]
        x_g = windows[:, g * n_per_group:(g + 1) * n_per_group]
        # (M/g, N/g, K, K) x (B, N/g, OH, OW, K, K) -> (M/g, B, OH, OW)
        outputs.append(np.tensordot(w_g, x_g, axes=([1, 2, 3], [1, 4, 5])))
    out = np.concatenate(outputs, axis=0)  # (M, B, OH, OW)
    out = np.moveaxis(out, 1, 0)
    if bias is not None:
        out = out + bias[None, :, None, None]
    return out.astype(x.dtype, copy=False)


def maxpool2d_batched(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    return _windows_batched(x, kernel, stride).max(axis=(4, 5))


def avgpool2d_batched(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    return (_windows_batched(x, kernel, stride).mean(axis=(4, 5))
            .astype(x.dtype, copy=False))


def lrn_batched(x: np.ndarray, size: int = 5, alpha: float = 1e-4,
                beta: float = 0.75, k: float = 2.0) -> np.ndarray:
    """Batched LRN: the channel-window sum runs once over the whole batch."""
    half = size // 2
    squared = np.square(x)
    scale = np.full_like(x, k)
    channels = x.shape[1]
    for c in range(channels):
        lo, hi = max(0, c - half), min(channels, c + half + 1)
        scale[:, c] += (alpha / size) * squared[:, lo:hi].sum(axis=1)
    return (x / scale ** beta).astype(x.dtype, copy=False)


def fully_connected_batched(x: np.ndarray, weights: np.ndarray,
                            bias: "np.ndarray | None" = None) -> np.ndarray:
    """Batched dense layer; returns (B, out, 1, 1)."""
    flat = x.reshape(x.shape[0], -1)
    out = flat @ weights.T
    if bias is not None:
        out = out + bias
    return out.reshape(x.shape[0], -1, 1, 1).astype(x.dtype, copy=False)


class BatchedNetworkExecutor:
    """Evaluates a whole batch through every layer with one call per layer.

    Mirrors :class:`~repro.sim.network_exec.NetworkExecutor` exactly —
    same deterministic weights per seed, same shape validation — but
    carries a leading batch axis through the network. See the module
    docstring for the integer-mode bit-exactness contract.
    """

    def __init__(self, network: Network,
                 params: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
                 seed: int = 0, integer: bool = False):
        self.network = network
        self.params = params if params is not None else make_network_weights(
            network, seed=seed, integer=integer)

    def _apply(self, spec: LayerSpec, x: np.ndarray) -> np.ndarray:
        if isinstance(spec, ConvSpec):
            w, b = self.params[spec.name]
            return conv2d_batched(x, w, b, stride=spec.stride, pad=spec.padding,
                                  groups=spec.groups)
        if isinstance(spec, PoolSpec):
            if spec.mode == "max":
                return maxpool2d_batched(x, spec.kernel, spec.stride)
            return avgpool2d_batched(x, spec.kernel, spec.stride)
        if isinstance(spec, ReLUSpec):
            return np.maximum(x, 0)
        if isinstance(spec, PadSpec):
            return pad2d_batched(x, spec.pad)
        if isinstance(spec, LRNSpec):
            return lrn_batched(x, size=spec.size, alpha=spec.alpha,
                               beta=spec.beta, k=spec.k)
        if isinstance(spec, FCSpec):
            w, b = self.params[spec.name]
            return fully_connected_batched(x, w, b)
        raise ShapeError(f"no operator for {spec!r}")

    def run_batch(self, xs) -> List[np.ndarray]:
        """Evaluate a stacked (B, C, H, W) batch; returns B output volumes."""
        if not isinstance(xs, np.ndarray) and len(xs) == 0:
            return []
        batch = np.asarray(xs) if not isinstance(xs, np.ndarray) else xs
        if batch.ndim == 3:
            batch = batch[None]
        if batch.ndim != 4:
            raise ConfigError("run_batch expects (B, C, H, W) inputs",
                              shape=tuple(batch.shape))
        expected = self.network.input_shape
        if batch.shape[1:] != (expected.channels, expected.height,
                               expected.width):
            raise ShapeError(
                f"batch items {batch.shape[1:]} != network input {expected}")
        current = batch
        with obs.span("network.run_batch_vectorized",
                      network=self.network.name, batch=batch.shape[0],
                      layers=len(self.network)):
            for binding in self.network:
                with obs.span("network.layer", layer=binding.name):
                    current = self._apply(binding.spec, current)
                out = binding.output_shape
                if current.shape[1:] != (out.channels, out.height, out.width):
                    raise ShapeError(
                        f"{binding.name}: produced {current.shape[1:]}, "
                        f"inferred {out}")
        return list(current)
