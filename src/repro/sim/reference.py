"""Layer-by-layer reference executor — the traditional CNN schedule.

"Traditional implementations of CNNs evaluate the network by following its
structure, one layer at a time", streaming every intermediate feature map
out to DRAM and back. This executor is (a) the functional golden model
the fused executor is checked against and (b) the traffic baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..nn.stages import Level
from . import ops
from .trace import TrafficTrace
from .weights import make_level_weights


def run_level(level: Level, x: np.ndarray,
              params: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]]) -> np.ndarray:
    """Evaluate one windowed level (pad + conv/pool + optional ReLU)."""
    if level.is_conv:
        if params is None or level.name not in params:
            raise KeyError(f"missing weights for conv level {level.name}")
        w, b = params[level.name]
        out = ops.conv2d(x, w, b, stride=level.stride, pad=level.pad, groups=level.groups)
    else:
        if level.pool_mode == "max":
            out = ops.maxpool2d(ops.pad2d(x, level.pad), level.kernel, level.stride)
        else:
            out = ops.avgpool2d(ops.pad2d(x, level.pad), level.kernel, level.stride)
    if level.has_relu:
        out = ops.relu(out)
    return out


class ReferenceExecutor:
    """Executes a list of levels one layer at a time.

    Every level reads its input from (virtual) DRAM and writes its output
    back — the paper's baseline data-movement pattern. ``merge_pooling``
    folds each pooling level into the preceding level's store, the
    bandwidth-free optimization the paper grants its baseline.
    """

    def __init__(self, levels: Sequence[Level],
                 params: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
                 seed: int = 0, integer: bool = False):
        self.levels = list(levels)
        self.params = params if params is not None else make_level_weights(
            self.levels, seed=seed, integer=integer)

    def run(self, x: np.ndarray, trace: Optional[TrafficTrace] = None,
            merge_pooling: bool = False) -> np.ndarray:
        """Evaluate all levels; optionally record traffic into ``trace``."""
        outputs = self.run_all(x, trace=trace, merge_pooling=merge_pooling)
        return outputs[-1] if outputs else x

    def run_all(self, x: np.ndarray, trace: Optional[TrafficTrace] = None,
                merge_pooling: bool = False) -> List[np.ndarray]:
        """Evaluate all levels, returning every level's output in order."""
        outputs: List[np.ndarray] = []
        current = x
        i = 0
        with obs.span("reference.run", levels=len(self.levels)):
            while i < len(self.levels):
                level = self.levels[i]
                if trace is not None:
                    trace.read(level.name, current.size)
                with obs.span("reference.level", level=level.name):
                    current = run_level(level, current, self.params)
                outputs.append(current)
                # A merged pooling level consumes the conv output on chip
                # before anything is stored.
                if (merge_pooling and level.is_conv and i + 1 < len(self.levels)
                        and self.levels[i + 1].is_pool):
                    pool = self.levels[i + 1]
                    with obs.span("reference.level", level=pool.name):
                        current = run_level(pool, current, self.params)
                    outputs.append(current)
                    i += 1
                    if trace is not None:
                        trace.write(pool.name, current.size)
                        trace.compute(pool.name, pool.total_ops)
                elif trace is not None:
                    trace.write(level.name, current.size)
                if trace is not None:
                    trace.compute(level.name, level.total_ops)
                i += 1
            if trace is not None:
                obs.mirror_traffic(trace, "sim.reference")
        return outputs
