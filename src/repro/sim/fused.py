"""The fused pyramid executor — Listing 3 realized in NumPy.

For every pyramid position (row-major over the final output map), each
fused level computes only the *fresh* block of its output: the data no
earlier pyramid produced. The input window for that block is assembled
from three sources, exactly as Listing 4's ``reuse`` module does:

* **BT** — rows computed during the previous pyramid row (top overlap),
* **BL** — columns computed by the previous pyramid in this row (left
  overlap),
* the producer level's fresh block (or a DRAM read at the group input).

Reuse buffers are bounded at their steady-state capacities and every read
is checked (:mod:`repro.sim.reuse`), so a schedule bug that touches
non-resident data raises instead of silently reusing stale values. The
executor's output is checked bit-identical (integer weights) or
numerically identical (float) to :class:`~repro.sim.reference.ReferenceExecutor`
by the test suite, and its DRAM traffic counters show each input element
read exactly once and each output element written exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..faults.retry import RetryPolicy
from ..faults.spec import TRANSFER_CORRUPT
from ..nn.shapes import ShapeError
from ..nn.stages import Level
from . import ops
from .reuse import MapReuseState
from .trace import TrafficTrace
from .weights import make_level_weights


@dataclass(frozen=True)
class _LevelPlan:
    """Precomputed boundaries for one level of the fused group.

    ``ob_r[i]`` — output rows complete after pyramid row ``i-1`` (``ob_r[0]
    = 0``); ``ib_r[i]`` — the corresponding padded-input row boundary
    ``(ob_r[i] - 1) * S + K``. Same for columns. The fresh block of
    pyramid ``(p, q)`` at this level is rows ``[ob_r[p], ob_r[p+1])`` x
    cols ``[ob_c[q], ob_c[q+1])`` of the output map, and its input window
    is rows ``[ob_r[p]*S, ib_r[p+1])`` x cols ``[ob_c[q]*S, ib_c[q+1])``.
    """

    level: Level
    ob_r: Tuple[int, ...]
    ib_r: Tuple[int, ...]
    ob_c: Tuple[int, ...]
    ib_c: Tuple[int, ...]


def _bounds(out_bounds: Sequence[int], kernel: int, stride: int) -> Tuple[int, ...]:
    return tuple(0 if ob == 0 else (ob - 1) * stride + kernel for ob in out_bounds)


def plan_levels(levels: Sequence[Level], tip_h: int, tip_w: int) -> List[_LevelPlan]:
    """Backward boundary propagation from the pyramid tip to the input."""
    if not levels:
        raise ShapeError("cannot fuse zero levels")
    final = levels[-1].out_shape
    if final.height % tip_h or final.width % tip_w:
        raise ShapeError(
            f"tip {tip_h}x{tip_w} must divide the final output map "
            f"{final.height}x{final.width} evenly"
        )
    rows = final.height // tip_h
    cols = final.width // tip_w
    ob_r: Sequence[int] = tuple(i * tip_h for i in range(rows + 1))
    ob_c: Sequence[int] = tuple(j * tip_w for j in range(cols + 1))

    plans: List[_LevelPlan] = []
    for level in reversed(levels):
        ib_r = _bounds(ob_r, level.kernel, level.stride)
        ib_c = _bounds(ob_c, level.kernel, level.stride)
        plans.append(_LevelPlan(level=level, ob_r=tuple(ob_r), ib_r=ib_r,
                                ob_c=tuple(ob_c), ib_c=ib_c))
        # Producer's output bounds: strip this level's padding, clamp.
        in_shape = level.in_shape
        ob_r = tuple(min(max(b - level.pad, 0), in_shape.height) for b in ib_r)
        ob_c = tuple(min(max(b - level.pad, 0), in_shape.width) for b in ib_c)
    return list(reversed(plans))


class FusedExecutor:
    """Evaluates a fused group of levels with the pyramid schedule.

    Parameters
    ----------
    levels:
        The fused group, e.g. ``extract_levels(vggnet_e().prefix(5))``.
    params:
        ``{conv_name: (weights, bias)}``; generated deterministically when
        omitted.
    tip_h, tip_w:
        Pyramid tip (output tile); must divide the final output map.
    input_reuse:
        When True (default, the paper's design) the group input also gets
        BL/BT buffers so every input element is read from DRAM exactly
        once. When False, window overlaps at the input are re-read from
        DRAM each pyramid (halo traffic), an ablation of the input-level
        buffering.
    faults, retry:
        A :class:`~repro.faults.injector.FaultInjector` subjects every
        DRAM input read to the plan's ``transfer_corrupt`` fault.
        Corruption is detected (checksum model) and repaired by bounded
        re-reads under ``retry`` — the repair traffic is traced under the
        ``input_refetch`` label — so the executor's *outputs stay
        bit-identical to the fault-free golden reference*; only the
        traffic changes. Exhausting the retry budget raises
        :class:`~repro.errors.SimFaultError`.
    """

    def __init__(self, levels: Sequence[Level],
                 params: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
                 tip_h: int = 1, tip_w: int = 1, seed: int = 0,
                 integer: bool = False, input_reuse: bool = True,
                 dtype=None, faults=None, retry: Optional[RetryPolicy] = None):
        if dtype is None:
            dtype = np.float64 if integer else np.float32
        self.levels = list(levels)
        self.params = params if params is not None else make_level_weights(
            self.levels, seed=seed, integer=integer)
        self.tip_h = tip_h
        self.tip_w = tip_w
        self.input_reuse = input_reuse
        self.dtype = dtype
        self.plans = plan_levels(self.levels, tip_h, tip_w)
        final = self.levels[-1].out_shape
        self.grid_rows = final.height // tip_h
        self.grid_cols = final.width // tip_w
        self._states: List[Optional[MapReuseState]] = []
        self.buffer_bytes = 0
        self._faults = faults
        self._retry = retry if retry is not None else RetryPolicy()

    # -- public API -----------------------------------------------------------

    def run(self, x: np.ndarray, trace: Optional[TrafficTrace] = None) -> np.ndarray:
        """Evaluate the fused group over input ``x``; returns the final map."""
        first = self.levels[0].in_shape
        if x.shape != (first.channels, first.height, first.width):
            raise ShapeError(f"input shape {x.shape} != expected {first}")
        self._input = np.asarray(x, dtype=self.dtype)
        self._trace = trace if trace is not None else TrafficTrace()
        self._init_states()
        final = self.levels[-1].out_shape
        out = np.zeros((final.channels, final.height, final.width), dtype=self.dtype)

        with obs.span("fused.run", levels=len(self.levels),
                      grid=f"{self.grid_rows}x{self.grid_cols}",
                      tip=f"{self.tip_h}x{self.tip_w}"):
            for p in range(self.grid_rows):
                with obs.span("fused.pyramid_row", row=p):
                    for q in range(self.grid_cols):
                        fresh, box = self._run_pyramid(p, q)
                        r0, r1, c0, c1 = box
                        out[:, r0:r1, c0:c1] = fresh
                        self._trace.write("output", fresh.size)
                        obs.add_counter("sim.fused.pyramids", 1)
            obs.set_gauge("sim.fused.buffer_bytes", self.buffer_bytes)
            obs.mirror_traffic(self._trace, "sim.fused")
        return out

    # -- setup ----------------------------------------------------------------

    def _init_states(self) -> None:
        self._states = []
        for i, plan in enumerate(self.plans):
            level = plan.level
            overlap = level.overlap
            if i == 0 and not self.input_reuse:
                self._states.append(None)
                continue
            # A buffer is only needed along an axis where pyramids actually
            # overlap: K > S and more than one pyramid position.
            need_v = overlap if self.grid_rows > 1 else 0
            need_h = overlap if self.grid_cols > 1 else 0
            if need_v == 0 and need_h == 0:
                self._states.append(None)
                continue
            padded = level.padded_in_shape
            # Tallest input window over all pyramid rows (usually the
            # first row's, but padding larger than K - S makes interior
            # windows taller).
            max_bl_rows = max(
                plan.ib_r[p + 1] - plan.ob_r[p] * level.stride
                for p in range(self.grid_rows)
            )
            self._states.append(
                MapReuseState(
                    name=f"in[{level.name}]",
                    channels=level.in_channels,
                    hp=padded.height,
                    wp=padded.width,
                    o_v=need_v,
                    o_h=need_h,
                    max_bl_rows=max_bl_rows,
                    dtype=self.dtype,
                )
            )
        self.buffer_bytes = sum(
            s.buffer_elements for s in self._states if s is not None
        ) * np.dtype(self.dtype).itemsize

    # -- per-pyramid execution --------------------------------------------------

    def _run_pyramid(self, p: int, q: int) -> Tuple[np.ndarray, Tuple[int, int, int, int]]:
        with obs.span("fused.pyramid", p=p, q=q):
            return self._run_pyramid_levels(p, q)

    def _run_pyramid_levels(self, p: int, q: int) -> Tuple[np.ndarray, Tuple[int, int, int, int]]:
        pending: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None
        for i, plan in enumerate(self.plans):
            level = plan.level
            a_r, b_r = plan.ob_r[p], plan.ob_r[p + 1]
            a_c, b_c = plan.ob_c[q], plan.ob_c[q + 1]
            if b_r <= a_r or b_c <= a_c:
                # Nothing new at this level for this pyramid: everything the
                # consumer needs was computed by earlier pyramids (possible
                # near map edges, where a consumer's last rows/columns
                # depend only on padding). Pass an empty block upward.
                empty = np.zeros((level.out_channels, b_r - a_r, b_c - a_c),
                                 dtype=self.dtype)
                pending = (empty, (a_r, b_r, a_c, b_c))
                continue
            rlo, rhi = a_r * level.stride, plan.ib_r[p + 1]
            clo, chi = a_c * level.stride, plan.ib_c[q + 1]
            rbt = max(plan.ib_r[p], rlo)
            cbl = max(plan.ib_c[q], clo)

            window = self._assemble(i, pending, rlo, rbt, rhi, clo, cbl, chi)
            self._update_buffers(i, window, p, q, rlo, rbt, rhi, clo, chi)
            fresh = self._compute(level, window)
            expect = (level.out_channels, b_r - a_r, b_c - a_c)
            if fresh.shape != expect:
                raise ShapeError(
                    f"{level.name}: fresh block {fresh.shape} != expected {expect}"
                )
            self._trace.compute(level.name, fresh.size * level.ops_per_output)
            pending = (fresh, (a_r, b_r, a_c, b_c))
        assert pending is not None
        return pending

    def _assemble(self, i: int, pending, rlo: int, rbt: int, rhi: int,
                  clo: int, cbl: int, chi: int) -> np.ndarray:
        """Build level ``i``'s input window from BT + BL + fresh data."""
        level = self.plans[i].level
        state = self._states[i]
        channels = level.in_channels
        window = np.zeros((channels, rhi - rlo, chi - clo), dtype=self.dtype)

        if state is None:
            # No reuse buffering at this map: the whole window is fresh
            # (only legal for the group input with input_reuse=False, or a
            # map with no inter-pyramid overlap).
            if i == 0:
                window[:] = self._read_input(rlo, rhi, clo, chi)
            else:
                window[:] = self._place_fresh(i, pending, rlo, rhi, clo, chi)
            return window

        if rbt > rlo:
            window[:, :rbt - rlo, :] = state.read_bt(rlo, rbt, clo, chi)
        if cbl > clo:
            window[:, rbt - rlo:, :cbl - clo] = state.read_bl(rbt, rhi, clo, cbl)
        if i == 0:
            fresh = self._read_input(rbt, rhi, cbl, chi)
        else:
            fresh = self._place_fresh(i, pending, rbt, rhi, cbl, chi)
        window[:, rbt - rlo:, cbl - clo:] = fresh
        return window

    def _update_buffers(self, i: int, window: np.ndarray, p: int, q: int,
                        rlo: int, rbt: int, rhi: int, clo: int, chi: int) -> None:
        state = self._states[i]
        if state is None:
            return
        plan = self.plans[i]
        # A pyramid is the row's (column's) last *active* one for this
        # level when no later pyramid produces fresh data here — either it
        # is literally the last, or the level's bounds have saturated
        # (remaining outputs depend only on padding).
        last_active_col = plan.ob_c[q + 1] >= plan.ob_c[-1]
        last_active_row = plan.ob_r[p + 1] >= plan.ob_r[-1]
        if state.o_h > 0 and not last_active_col:
            state.write_bl(window[:, rbt - rlo:, chi - clo - state.o_h:],
                           row_lo=rbt, col_lo=chi - state.o_h)
        if state.o_v > 0 and not last_active_row:
            # Defer the last o_h columns to the next active pyramid (they
            # are its window's BL-adjacent region and it writes them
            # itself); the row's last active pyramid writes to the edge.
            w1 = chi if last_active_col else chi - state.o_h
            if w1 > clo:
                state.write_bt(window[:, rhi - state.o_v - rlo:, :w1 - clo],
                               row_lo=rhi - state.o_v, col_lo=clo, col_hi=w1)

    def _read_input(self, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """Read a padded-coordinate block of the group input from DRAM."""
        level = self.levels[0]
        block = self._pad_block(self._input, level.pad, r0, r1, c0, c1)
        real = self._real_elements(level.pad, level.in_shape, r0, r1, c0, c1)
        if real:
            words = real * self._input.shape[0]
            self._trace.read("input", words)
            if self._faults is not None:
                self._repair_corrupt_read(f"input[{r0}:{c0}]", words)
        return block

    def _repair_corrupt_read(self, site: str, words: int) -> None:
        """Detect-and-refetch loop for one DRAM read under injected
        ``transfer_corrupt`` faults. The returned data is always correct
        (detection never misses); the cost is re-read traffic, traced as
        ``input_refetch`` so the once-per-element invariant of the
        ``input`` label is preserved."""
        attempt = 1
        while self._faults.corrupts(site):
            obs.add_counter("sim.fused.corrupt_reads")
            if attempt >= self._retry.max_attempts:
                raise self._retry.exhausted(site, TRANSFER_CORRUPT, words=words)
            self._faults.record_refetch(site)
            self._trace.read("input_refetch", words)
            attempt += 1

    def _place_fresh(self, i: int, pending, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """Frame the producer's fresh block into padded coordinates.

        The producer's block must *cover* the demand; it can exceed it
        when this level's kernel is smaller than its stride (the windows
        skip data, so the gap columns the producer computed are never
        consumed) — the demanded subrange is sliced out.
        """
        if pending is None:
            raise ShapeError("no pending fresh block from producer")
        fresh, (fr0, fr1, fc0, fc1) = pending
        level = self.plans[i].level
        pad = level.pad
        block = np.zeros((fresh.shape[0], r1 - r0, c1 - c0), dtype=self.dtype)
        in_shape = level.in_shape
        u_r0 = min(max(r0 - pad, 0), in_shape.height)
        u_r1 = min(max(r1 - pad, 0), in_shape.height)
        u_c0 = min(max(c0 - pad, 0), in_shape.width)
        u_c1 = min(max(c1 - pad, 0), in_shape.width)
        if not (fr0 <= u_r0 and u_r1 <= fr1 and fc0 <= u_c0 and u_c1 <= fc1):
            raise ShapeError(
                f"{level.name}: fresh block {(fr0, fr1, fc0, fc1)} does not "
                f"cover window demand {(u_r0, u_r1, u_c0, u_c1)}"
            )
        if u_r1 > u_r0 and u_c1 > u_c0:
            block[:, pad + u_r0 - r0:pad + u_r1 - r0,
                  pad + u_c0 - c0:pad + u_c1 - c0] = \
                fresh[:, u_r0 - fr0:u_r1 - fr0, u_c0 - fc0:u_c1 - fc0]
        return block

    @staticmethod
    def _pad_block(x: np.ndarray, pad: int, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """Block [r0,r1)x[c0,c1) of the zero-padded version of ``x``."""
        channels, height, width = x.shape
        block = np.zeros((channels, r1 - r0, c1 - c0), dtype=x.dtype)
        u_r0, u_r1 = max(r0 - pad, 0), min(r1 - pad, height)
        u_c0, u_c1 = max(c0 - pad, 0), min(c1 - pad, width)
        if u_r1 > u_r0 and u_c1 > u_c0:
            block[:, pad + u_r0 - r0:pad + u_r1 - r0,
                  pad + u_c0 - c0:pad + u_c1 - c0] = x[:, u_r0:u_r1, u_c0:u_c1]
        return block

    @staticmethod
    def _real_elements(pad, shape, r0, r1, c0, c1) -> int:
        u_r0, u_r1 = max(r0 - pad, 0), min(r1 - pad, shape.height)
        u_c0, u_c1 = max(c0 - pad, 0), min(c1 - pad, shape.width)
        return max(u_r1 - u_r0, 0) * max(u_c1 - u_c0, 0)

    def _compute(self, level: Level, window: np.ndarray) -> np.ndarray:
        if level.is_conv:
            w, b = self.params[level.name]
            out = ops.conv2d(window, w, b, stride=level.stride, groups=level.groups)
        elif level.pool_mode == "max":
            out = ops.maxpool2d(window, level.kernel, level.stride)
        else:
            out = ops.avgpool2d(window, level.kernel, level.stride)
        if level.has_relu:
            out = ops.relu(out)
        return out
