"""Whole-network execution: every layer type, end to end.

The level executors (:mod:`repro.sim.reference`, :mod:`repro.sim.fused`)
cover the fusion scope — windowed layers plus ReLU/padding. This module
executes complete :class:`~repro.nn.network.Network` objects, including
the LRN and fully connected layers the paper's accelerators exclude, so
zoo networks can be evaluated end to end (the role Torch played for the
paper's tool).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.layers import (
    ConvSpec,
    FCSpec,
    LayerSpec,
    LRNSpec,
    PadSpec,
    PoolSpec,
    ReLUSpec,
)
from .. import obs
from ..nn.network import Network
from ..nn.shapes import ShapeError
from . import ops
from .trace import TrafficTrace
from .weights import make_network_weights


class NetworkExecutor:
    """Executes a full network layer by layer (the Torch role).

    Weights are deterministic per seed unless supplied; shapes are
    validated against the network's inferred shapes at every step, so a
    drift between the IR's shape inference and the operators fails loudly.
    """

    def __init__(self, network: Network,
                 params: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
                 seed: int = 0, integer: bool = False):
        self.network = network
        self.params = params if params is not None else make_network_weights(
            network, seed=seed, integer=integer)

    def _apply(self, spec: LayerSpec, x: np.ndarray) -> np.ndarray:
        if isinstance(spec, ConvSpec):
            w, b = self.params[spec.name]
            return ops.conv2d(x, w, b, stride=spec.stride, pad=spec.padding,
                              groups=spec.groups)
        if isinstance(spec, PoolSpec):
            if spec.mode == "max":
                return ops.maxpool2d(x, spec.kernel, spec.stride)
            return ops.avgpool2d(x, spec.kernel, spec.stride)
        if isinstance(spec, ReLUSpec):
            return ops.relu(x)
        if isinstance(spec, PadSpec):
            return ops.pad2d(x, spec.pad)
        if isinstance(spec, LRNSpec):
            return ops.lrn(x, size=spec.size, alpha=spec.alpha, beta=spec.beta,
                           k=spec.k)
        if isinstance(spec, FCSpec):
            w, b = self.params[spec.name]
            return ops.fully_connected(x, w, b)
        raise ShapeError(f"no operator for {spec!r}")

    def run(self, x: np.ndarray, trace: Optional[TrafficTrace] = None) -> np.ndarray:
        """Evaluate the whole network; returns the final output volume."""
        return self.run_all(x, trace)[-1] if len(self.network) else np.asarray(x)

    def run_all(self, x: np.ndarray, trace: Optional[TrafficTrace] = None) -> List[np.ndarray]:
        """Evaluate all layers, returning every intermediate volume."""
        expected = self.network.input_shape
        if x.shape != (expected.channels, expected.height, expected.width):
            raise ShapeError(f"input {x.shape} != network input {expected}")
        outputs: List[np.ndarray] = []
        current = np.asarray(x)
        with obs.span("network.run", network=self.network.name,
                      layers=len(self.network)):
            for binding in self.network:
                if trace is not None:
                    trace.read(binding.name, current.size)
                with obs.span("network.layer", layer=binding.name):
                    current = self._apply(binding.spec, current)
                out = binding.output_shape
                if current.shape != (out.channels, out.height, out.width):
                    raise ShapeError(
                        f"{binding.name}: produced {current.shape}, inferred {out}"
                    )
                if trace is not None:
                    trace.write(binding.name, current.size)
                    trace.compute(binding.name, binding.total_ops)
                outputs.append(current)
            if trace is not None:
                obs.mirror_traffic(trace, "sim.network")
        return outputs

    def run_batch(self, xs, trace: Optional[TrafficTrace] = None) -> List[np.ndarray]:
        """Evaluate a batch of inputs one at a time, in order.

        ``xs`` is a sequence of ``(C, H, W)`` volumes or a stacked
        ``(B, C, H, W)`` array. Each item runs through :meth:`run`, so
        every item gets its own ``network.run`` span and the outputs are
        exactly what ``B`` independent calls would produce — the
        reference semantics :class:`repro.sim.batched.BatchedNetworkExecutor`
        and the serving workers are verified against.
        """
        items: List[np.ndarray] = [np.asarray(x) for x in xs]
        with obs.span("network.run_batch", network=self.network.name,
                      batch=len(items)):
            return [self.run(x, trace) for x in items]

    def classify(self, x: np.ndarray) -> int:
        """Index of the maximum output — a toy top-1 'prediction'."""
        return int(np.argmax(self.run(x).ravel()))
