"""Reuse buffers: the BL / BT intermediate-data stores of Listing 4.

Each feature map flowing *between* fused levels (and optionally the group
input) owns two bounded buffers in the padded coordinate space of its
consumer:

* **BL** ("buffer left") — the last ``K - S`` *columns* of the previous
  pyramid's input window, reused as the pyramid base slides along a row.
* **BT** ("buffer top") — the last ``K - S`` *rows* of the windows
  produced while sweeping the previous pyramid row, spanning the full map
  width, reused when the base moves down to the next row.

The buffers are allocated at exactly their steady-state capacity and
every read asserts that the requested region is resident — so the
executor machine-checks that the streaming schedule never touches data
the paper's accelerator would not have on chip.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import SimFaultError


class ReuseError(SimFaultError):
    """A read touched data outside the resident BL/BT windows (a
    :class:`~repro.errors.SimFaultError`, hence still a ``RuntimeError``)."""


class MapReuseState:
    """BL/BT state for one inter-level feature map.

    Coordinates are absolute indices into the consumer's *padded* input
    space (``hp x wp``). ``o_v``/``o_h`` are the consumer's vertical and
    horizontal overlaps (``K - S``); ``max_bl_rows`` is the tallest input
    window (the first pyramid row's), which bounds BL height.
    """

    def __init__(self, name: str, channels: int, hp: int, wp: int,
                 o_v: int, o_h: int, max_bl_rows: int, dtype=np.float32):
        self.name = name
        self.channels = channels
        self.hp = hp
        self.wp = wp
        self.o_v = o_v
        self.o_h = o_h
        self.bt: Optional[np.ndarray] = (
            np.zeros((channels, o_v, wp), dtype) if o_v > 0 else None
        )
        # Absolute row index stored in bt[:, 0, col] for each column;
        # -1 = nothing resident.
        self.bt_row_tag = np.full(wp, -1, dtype=np.int64)
        self.bl: Optional[np.ndarray] = (
            np.zeros((channels, max_bl_rows, o_h), dtype) if o_h > 0 else None
        )
        self.bl_row_base = -1
        self.bl_rows = 0
        self.bl_col_base = -1

    # -- capacity accounting -------------------------------------------------

    @property
    def buffer_elements(self) -> int:
        total = 0
        if self.bt is not None:
            total += self.bt.size
        if self.bl is not None:
            total += self.bl.size
        return total

    # -- BT -------------------------------------------------------------------

    def read_bt(self, row_lo: int, row_hi: int, col_lo: int, col_hi: int) -> np.ndarray:
        """Rows ``[row_lo, row_hi)`` x cols ``[col_lo, col_hi)`` from BT."""
        if self.bt is None:
            raise ReuseError(f"{self.name}: BT read but no vertical overlap")
        height = row_hi - row_lo
        if height > self.o_v:
            raise ReuseError(
                f"{self.name}: BT read of {height} rows exceeds capacity {self.o_v}"
            )
        tags = self.bt_row_tag[col_lo:col_hi]
        if not np.all(tags == row_lo):
            raise ReuseError(
                f"{self.name}: BT cols [{col_lo},{col_hi}) do not hold row {row_lo} "
                f"(tags {np.unique(tags)})"
            )
        return self.bt[:, :height, col_lo:col_hi]

    def write_bt(self, data: np.ndarray, row_lo: int, col_lo: int, col_hi: int) -> None:
        """Store rows starting at absolute ``row_lo`` for ``[col_lo, col_hi)``."""
        if self.bt is None:
            raise ReuseError(f"{self.name}: BT write but no vertical overlap")
        height = data.shape[1]
        if height > self.o_v:
            raise ReuseError(
                f"{self.name}: BT write of {height} rows exceeds capacity {self.o_v}"
            )
        self.bt[:, :height, col_lo:col_hi] = data
        self.bt_row_tag[col_lo:col_hi] = row_lo

    # -- BL -------------------------------------------------------------------

    def read_bl(self, row_lo: int, row_hi: int, col_lo: int, col_hi: int) -> np.ndarray:
        """Rows ``[row_lo, row_hi)`` x cols ``[col_lo, col_hi)`` from BL."""
        if self.bl is None:
            raise ReuseError(f"{self.name}: BL read but no horizontal overlap")
        width = col_hi - col_lo
        if width > self.o_h:
            raise ReuseError(
                f"{self.name}: BL read of {width} cols exceeds capacity {self.o_h}"
            )
        if self.bl_col_base != col_lo:
            raise ReuseError(
                f"{self.name}: BL holds cols starting at {self.bl_col_base}, "
                f"read wants {col_lo}"
            )
        if not (self.bl_row_base <= row_lo and
                row_hi <= self.bl_row_base + self.bl_rows):
            raise ReuseError(
                f"{self.name}: BL rows [{self.bl_row_base},"
                f"{self.bl_row_base + self.bl_rows}) do not cover [{row_lo},{row_hi})"
            )
        off = row_lo - self.bl_row_base
        return self.bl[:, off:off + (row_hi - row_lo), :width]

    def write_bl(self, data: np.ndarray, row_lo: int, col_lo: int) -> None:
        """Replace BL with ``data`` (rows from ``row_lo``, cols from ``col_lo``)."""
        if self.bl is None:
            raise ReuseError(f"{self.name}: BL write but no horizontal overlap")
        rows, width = data.shape[1], data.shape[2]
        if rows > self.bl.shape[1] or width > self.o_h:
            raise ReuseError(
                f"{self.name}: BL write {rows}x{width} exceeds capacity "
                f"{self.bl.shape[1]}x{self.o_h}"
            )
        self.bl[:, :rows, :width] = data
        self.bl_row_base = row_lo
        self.bl_rows = rows
        self.bl_col_base = col_lo
