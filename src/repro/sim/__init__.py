"""Functional simulator: reference and fused executors with traffic tracing."""

from .batched import BatchedNetworkExecutor, preserves_exact_arithmetic
from .cache import CacheSim, CacheStats
from .fused import FusedExecutor, plan_levels
from .memtrace import build_address_map, fused_trace, reference_trace
from .ops import avgpool2d, conv2d, fully_connected, lrn, maxpool2d, pad2d, relu
from .network_exec import NetworkExecutor
from .partitioned import PartitionedExecutor
from .recompute import InputLineBuffer, RecomputeExecutor
from .reference import ReferenceExecutor, run_level
from .reuse import MapReuseState, ReuseError
from .tiled import TiledBaselineExecutor
from .trace import TrafficTrace
from .weights import (
    load_params,
    make_input,
    make_level_weights,
    make_network_weights,
    save_params,
)

__all__ = [
    "BatchedNetworkExecutor",
    "preserves_exact_arithmetic",
    "CacheSim",
    "CacheStats",
    "FusedExecutor",
    "InputLineBuffer",
    "MapReuseState",
    "NetworkExecutor",
    "PartitionedExecutor",
    "RecomputeExecutor",
    "ReferenceExecutor",
    "ReuseError",
    "TiledBaselineExecutor",
    "TrafficTrace",
    "avgpool2d",
    "build_address_map",
    "conv2d",
    "fully_connected",
    "fused_trace",
    "load_params",
    "lrn",
    "make_input",
    "make_level_weights",
    "make_network_weights",
    "maxpool2d",
    "pad2d",
    "plan_levels",
    "reference_trace",
    "relu",
    "save_params",
    "run_level",
]
