"""NumPy implementations of the CNN primitives.

All operators take and return ``(channels, height, width)`` float32
arrays. Convolution is direct (via stride-tricks windowing + tensordot),
matching the accelerator's arithmetic order closely enough for float32
comparison with small tolerances; integer inputs reproduce exactly.
"""

from __future__ import annotations

import numpy as np

from ..nn.shapes import ShapeError, conv_output_extent


def pad2d(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions by ``pad`` on every border."""
    if pad < 0:
        raise ShapeError(f"padding must be non-negative, got {pad}")
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (pad, pad), (pad, pad)))


def _windows(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """View of all K x K windows: shape (C, OH, OW, K, K)."""
    out_h = conv_output_extent(x.shape[1], kernel, stride)
    out_w = conv_output_extent(x.shape[2], kernel, stride)
    view = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(1, 2))
    return view[:, ::stride, ::stride][:, :out_h, :out_w]


def conv2d(x: np.ndarray, weights: np.ndarray, bias: "np.ndarray | None" = None,
           stride: int = 1, pad: int = 0, groups: int = 1) -> np.ndarray:
    """2-D convolution (really cross-correlation, as in every CNN framework).

    ``weights`` has shape ``(M, N // groups, K, K)``; ``bias`` shape
    ``(M,)`` or None. Grouped convolution splits input and output channels
    into ``groups`` independent blocks (AlexNet conv2/4/5).
    """
    x = pad2d(x, pad)
    m, n_per_group, kh, kw = weights.shape
    if kh != kw:
        raise ShapeError("only square kernels are supported")
    if x.shape[0] != n_per_group * groups:
        raise ShapeError(
            f"input channels {x.shape[0]} != weights {n_per_group} x groups {groups}"
        )
    if m % groups != 0:
        raise ShapeError(f"output channels {m} not divisible by groups {groups}")

    windows = _windows(x, kh, stride)  # (N, OH, OW, K, K)
    m_per_group = m // groups
    outputs = []
    for g in range(groups):
        w_g = weights[g * m_per_group:(g + 1) * m_per_group]
        x_g = windows[g * n_per_group:(g + 1) * n_per_group]
        # (M/g, N/g, K, K) x (N/g, OH, OW, K, K) -> (M/g, OH, OW)
        outputs.append(np.tensordot(w_g, x_g, axes=([1, 2, 3], [0, 3, 4])))
    out = np.concatenate(outputs, axis=0)
    if bias is not None:
        out = out + bias[:, None, None]
    return out.astype(x.dtype, copy=False)


def maxpool2d(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Max pooling over K x K windows with stride S."""
    return _windows(x, kernel, stride).max(axis=(3, 4))


def avgpool2d(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Average pooling over K x K windows with stride S."""
    return _windows(x, kernel, stride).mean(axis=(3, 4)).astype(x.dtype, copy=False)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit: max(x, 0) elementwise."""
    return np.maximum(x, 0)


def lrn(x: np.ndarray, size: int = 5, alpha: float = 1e-4, beta: float = 0.75,
        k: float = 2.0) -> np.ndarray:
    """Local response normalization across channels (AlexNet)."""
    half = size // 2
    squared = np.square(x)
    scale = np.full_like(x, k)
    channels = x.shape[0]
    for c in range(channels):
        lo, hi = max(0, c - half), min(channels, c + half + 1)
        scale[c] += (alpha / size) * squared[lo:hi].sum(axis=0)
    return (x / scale ** beta).astype(x.dtype, copy=False)


def fully_connected(x: np.ndarray, weights: np.ndarray,
                    bias: "np.ndarray | None" = None) -> np.ndarray:
    """Dense layer over the flattened input; returns (out, 1, 1)."""
    flat = x.reshape(-1)
    out = weights @ flat
    if bias is not None:
        out = out + bias
    return out.reshape(-1, 1, 1).astype(x.dtype, copy=False)
