"""Tiled baseline executor — Listings 1-2's loop nest, measured.

The baseline accelerator model (:mod:`repro.hw.baseline`) predicts the
layer-by-layer design's traffic analytically: the input is re-read once
per M-tile group, with the ``K - S`` halo re-fetched around every
spatial tile, while the output tile accumulates on chip across the N
loop. This executor *runs* that loop nest: per stage, per (m-group,
spatial tile), it loads the input tile from (traced) DRAM, computes the
partial convolution per n-group on chip, applies ReLU and any merged
pooling, and stores the tile once. Its measured traffic reproduces
:func:`repro.hw.baseline.stage_cost` exactly and its output is
bit-identical to the reference executor.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.shapes import ShapeError
from ..nn.stages import Level
from . import ops
from .reference import run_level
from .trace import TrafficTrace
from .weights import make_level_weights


class TiledBaselineExecutor:
    """Executes levels one at a time with the Tm/Tr/Tc tiling of [19].

    ``tm`` is the output-channel tile (the unrolled M loop — the model's
    traffic only depends on the M tiling, since the N loop accumulates
    into the on-chip output tile); ``tr``/``tc`` are the spatial tile.
    Pooling levels immediately following a conv are merged into its
    store, as the paper grants the baseline.
    """

    def __init__(self, levels: Sequence[Level],
                 params: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
                 tm: int = 16, tr: int = 16, tc: int = 16,
                 seed: int = 0, integer: bool = False, dtype=None):
        if dtype is None:
            dtype = np.float64 if integer else np.float32
        if tm <= 0 or tr <= 0 or tc <= 0:
            raise ShapeError("tile parameters must be positive")
        self.levels = list(levels)
        self.params = params if params is not None else make_level_weights(
            self.levels, seed=seed, integer=integer)
        self.tm, self.tr, self.tc = tm, tr, tc
        self.dtype = dtype

    def run(self, x: np.ndarray, trace: Optional[TrafficTrace] = None) -> np.ndarray:
        trace = trace if trace is not None else TrafficTrace()
        current = np.asarray(x, dtype=self.dtype)
        i = 0
        while i < len(self.levels):
            level = self.levels[i]
            if not level.is_conv:
                raise ShapeError(
                    f"{level.name}: the baseline schedule expects conv stages "
                    f"(pooling merges into the preceding conv's store)"
                )
            pool: Optional[Level] = None
            if i + 1 < len(self.levels) and self.levels[i + 1].is_pool:
                pool = self.levels[i + 1]
                i += 1
            current = self._run_stage(level, pool, current, trace)
            i += 1
        return current

    def _run_stage(self, level: Level, pool: Optional[Level], x: np.ndarray,
                   trace: TrafficTrace) -> np.ndarray:
        out_shape = level.out_shape
        k, s, pad = level.kernel, level.stride, level.pad
        w, b = self.params[level.name]
        conv_out = np.zeros((out_shape.channels, out_shape.height, out_shape.width),
                            dtype=self.dtype)
        padded = ops.pad2d(x, pad)
        m_groups = ceil(out_shape.channels / self.tm)
        g = level.groups
        m_per_group = out_shape.channels // g

        for mg in range(m_groups):
            m0 = mg * self.tm
            m1 = min(m0 + self.tm, out_shape.channels)
            for r0 in range(0, out_shape.height, self.tr):
                r1 = min(r0 + self.tr, out_shape.height)
                for c0 in range(0, out_shape.width, self.tc):
                    c1 = min(c0 + self.tc, out_shape.width)
                    # DRAM load: the tile's input window (with halo),
                    # real elements only — padding zeros are synthesized.
                    in_r0, in_r1 = r0 * s, (r1 - 1) * s + k
                    in_c0, in_c1 = c0 * s, (c1 - 1) * s + k
                    window = padded[:, in_r0:in_r1, in_c0:in_c1]
                    real_rows = (min(in_r1 - pad, level.in_shape.height)
                                 - max(in_r0 - pad, 0))
                    real_cols = (min(in_c1 - pad, level.in_shape.width)
                                 - max(in_c0 - pad, 0))
                    trace.read(level.name,
                               max(real_rows, 0) * max(real_cols, 0) * x.shape[0])
                    # Compute the tile for this m-group (all n on chip:
                    # the N loop accumulates into the output buffer).
                    for m in range(m0, m1):
                        grp = m // m_per_group
                        n_per = level.in_channels // g
                        w_m = w[m:m + 1]
                        block = ops.conv2d(
                            window[grp * n_per:(grp + 1) * n_per],
                            w_m, b[m:m + 1], stride=s, groups=1)
                        conv_out[m, r0:r1, c0:c1] = block[0]
                    trace.compute(
                        level.name,
                        (m1 - m0) * (r1 - r0) * (c1 - c0) * level.ops_per_output)
        if level.has_relu:
            conv_out = ops.relu(conv_out)
        if pool is not None:
            result = run_level(pool, conv_out, self.params)
            trace.compute(pool.name, pool.total_ops)
        else:
            result = conv_out
        trace.write(level.name, result.size)
        return result
