"""A set-associative LRU cache simulator.

Section VI-C attributes the >2x CPU speedup of layer fusion to memory
behavior: the fused schedule keeps intermediate data in cache while the
layer-by-layer schedule streams every map out and back. This simulator
measures that directly — the schedule trace generators
(:mod:`repro.sim.memtrace`) replay both schedules' element accesses
through it and compare miss counts.

The model is a classic write-back, write-allocate, set-associative LRU
cache; addresses are byte addresses, mapped to lines of ``line_bytes``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..errors import ConfigError
from ..faults.retry import RetryPolicy
from ..faults.spec import TRANSFER_CORRUPT


@dataclass
class CacheStats:
    """Access counters; misses split by read/write.

    ``corrupted_fills``/``refetches`` tally injected ``transfer_corrupt``
    faults on line fills and their repair traffic; zero without faults.
    """

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0
    corrupted_fills: int = 0
    refetches: int = 0

    @property
    def accesses(self) -> int:
        return (self.read_hits + self.read_misses
                + self.write_hits + self.write_misses)

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def dram_lines_transferred(self) -> int:
        """Lines moved to/from DRAM: every miss fills a line; dirty
        evictions write one back; every corruption repair re-fetches."""
        return self.misses + self.writebacks + self.refetches


class CacheSim:
    """Set-associative LRU cache with write-back / write-allocate.

    With a :class:`~repro.faults.injector.FaultInjector`, every line fill
    is subject to the plan's ``transfer_corrupt`` fault. Corruption is
    always detected (checksum model) and repaired by re-fetching the line
    under the bounded ``retry`` policy, so cached *data* is never wrong —
    the cost shows up as extra DRAM line transfers. A line still corrupt
    after the final attempt raises :class:`~repro.errors.SimFaultError`.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 8,
                 faults=None, retry: Optional[RetryPolicy] = None):
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ConfigError("cache parameters must be positive",
                              size_bytes=size_bytes, line_bytes=line_bytes,
                              ways=ways)
        if size_bytes % (line_bytes * ways):
            raise ConfigError("size must be a multiple of line_bytes * ways",
                              size_bytes=size_bytes, line_bytes=line_bytes,
                              ways=ways)
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        # Per set: OrderedDict tag -> dirty flag, in LRU order (oldest first).
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()
        self._faults = faults
        self._retry = retry if retry is not None else RetryPolicy()

    def _fill_line(self, line: int) -> None:
        """Model the DRAM fill of one line, repairing corrupt arrivals."""
        if self._faults is None:
            return
        site = f"line[{line}]"
        attempt = 1
        while self._faults.corrupts(site):
            self.stats.corrupted_fills += 1
            if attempt >= self._retry.max_attempts:
                raise self._retry.exhausted(site, TRANSFER_CORRUPT, line=line)
            self._faults.record_refetch(site)
            self.stats.refetches += 1
            attempt += 1

    def access(self, addr: int, write: bool = False) -> bool:
        """One byte-address access; returns True on hit."""
        line = addr // self.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        entries = self._sets.setdefault(index, OrderedDict())
        if tag in entries:
            entries.move_to_end(tag)
            if write:
                entries[tag] = True
                self.stats.write_hits += 1
            else:
                self.stats.read_hits += 1
            return True
        # Miss: allocate, evicting LRU if the set is full.
        if len(entries) >= self.ways:
            _, dirty = entries.popitem(last=False)
            if dirty:
                self.stats.writebacks += 1
        self._fill_line(line)
        entries[tag] = write
        if write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        return False

    def run(self, trace: Iterable[Tuple[int, bool]]) -> CacheStats:
        """Replay an (address, is_write) trace; returns the stats."""
        for addr, write in trace:
            self.access(addr, write)
        return self.stats

    def flush_dirty(self) -> int:
        """Write back all dirty lines (end-of-run accounting)."""
        count = 0
        for entries in self._sets.values():
            for tag, dirty in entries.items():
                if dirty:
                    entries[tag] = False
                    count += 1
        self.stats.writebacks += count
        return count
