"""Grouping of raw layers into the units the fusion analysis operates on.

The paper reasons at two granularities:

* **Levels** — individual *windowed* operations (convolution or pooling).
  The pyramid geometry of Section III-B walks backwards over levels, since
  both convolution and pooling obey ``D = S*D' + K - S``. Padding layers
  fold into the following level's effective padding; ReLU attaches to the
  producing level (it is elementwise and free of geometry).

* **Fusion units** — the things the partition search of Section V-B
  composes: each convolution (with its padding/ReLU) is a unit, and each
  pooling layer is its own unit ("for the purposes of this analysis, we
  treat them as independent layers"). For Figure 2 style accounting the
  paper instead merges each pooling into the preceding convolution; both
  groupings are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .layers import ConvSpec, FCSpec, LRNSpec, PadSpec, PoolSpec, ReLUSpec
from .network import Network
from .shapes import ShapeError, TensorShape


@dataclass(frozen=True)
class Level:
    """One windowed operation (conv or pool) bound to its geometry.

    ``in_shape`` is the *unpadded* producer output feeding this level;
    ``pad`` zeros are added on each border before the window slides.
    """

    name: str
    kind: str  # "conv" or "pool"
    kernel: int
    stride: int
    pad: int
    in_shape: TensorShape
    out_shape: TensorShape
    weight_count: int
    ops_per_output: int
    has_relu: bool = False
    pool_mode: str = "max"
    groups: int = 1

    @property
    def is_conv(self) -> bool:
        return self.kind == "conv"

    @property
    def is_pool(self) -> bool:
        return self.kind == "pool"

    @property
    def in_channels(self) -> int:
        return self.in_shape.channels

    @property
    def out_channels(self) -> int:
        return self.out_shape.channels

    @property
    def padded_in_shape(self) -> TensorShape:
        return self.in_shape.padded(self.pad)

    @property
    def total_ops(self) -> int:
        return self.out_shape.elements * self.ops_per_output

    @property
    def overlap(self) -> int:
        """Columns/rows shared by adjacent windows: ``K - S`` (Section III-B).

        Zero for non-overlapping windows (e.g. 2x2 stride-2 pooling), which
        is why fusing pooling into the prior convolution is free.
        """
        return max(self.kernel - self.stride, 0)

    def __str__(self) -> str:
        tag = f"{self.kind} {self.kernel}x{self.kernel}/s{self.stride}"
        return f"{self.name} ({tag}, {self.in_shape} -> {self.out_shape})"


@dataclass(frozen=True)
class FusionUnit:
    """A partition-search unit: one or more consecutive levels that always
    fuse together (a conv stage, optionally with a merged pooling level)."""

    levels: "tuple[Level, ...]"

    def __post_init__(self) -> None:
        if not self.levels:
            raise ShapeError("a fusion unit needs at least one level")

    @property
    def name(self) -> str:
        return "+".join(level.name for level in self.levels)

    @property
    def in_shape(self) -> TensorShape:
        return self.levels[0].in_shape

    @property
    def out_shape(self) -> TensorShape:
        return self.levels[-1].out_shape

    @property
    def weight_count(self) -> int:
        return sum(level.weight_count for level in self.levels)

    @property
    def total_ops(self) -> int:
        return sum(level.total_ops for level in self.levels)


def extract_levels(network: Network) -> List[Level]:
    """Flatten a network's feature extractor into windowed levels.

    Explicit :class:`PadSpec` layers fold into the next windowed level's
    padding; :class:`ReLUSpec` attaches to the previous level; LRN layers
    are skipped with the paper's justification (Section VI-B: omitted for
    comparability, negligible compute). Fully connected layers terminate
    the walk (out of fusion scope).
    """
    levels: List[Level] = []
    pending_pad = 0
    for binding in network:
        spec = binding.spec
        if isinstance(spec, FCSpec):
            break
        if isinstance(spec, PadSpec):
            pending_pad += spec.pad
            continue
        if isinstance(spec, ReLUSpec):
            if not levels:
                raise ShapeError(f"{spec.name}: ReLU before any windowed layer")
            levels[-1] = _with_relu(levels[-1])
            continue
        if isinstance(spec, LRNSpec):
            continue
        if isinstance(spec, ConvSpec):
            pad = pending_pad + spec.padding
            in_shape = binding.input_shape
            if pending_pad:
                # binding.input_shape already includes the explicit PadSpec
                # output; undo it so `pad` carries the whole border.
                in_shape = TensorShape(
                    in_shape.channels,
                    in_shape.height - 2 * pending_pad,
                    in_shape.width - 2 * pending_pad,
                )
            levels.append(
                Level(
                    name=spec.name,
                    kind="conv",
                    kernel=spec.kernel,
                    stride=spec.stride,
                    pad=pad,
                    in_shape=in_shape,
                    out_shape=binding.output_shape,
                    weight_count=binding.weight_count,
                    ops_per_output=spec.ops_per_output(binding.input_shape),
                    groups=spec.groups,
                )
            )
            pending_pad = 0
            continue
        if isinstance(spec, PoolSpec):
            if pending_pad:
                raise ShapeError(f"{spec.name}: padding before pooling is unsupported")
            levels.append(
                Level(
                    name=spec.name,
                    kind="pool",
                    kernel=spec.kernel,
                    stride=spec.stride,
                    pad=0,
                    in_shape=binding.input_shape,
                    out_shape=binding.output_shape,
                    weight_count=0,
                    ops_per_output=spec.ops_per_output(binding.input_shape),
                    pool_mode=spec.mode,
                )
            )
            continue
        raise ShapeError(f"unsupported layer kind in fusion scope: {spec!r}")
    if pending_pad:
        raise ShapeError("trailing padding layer with no consumer")
    return levels


def _with_relu(level: Level) -> Level:
    return Level(
        name=level.name,
        kind=level.kind,
        kernel=level.kernel,
        stride=level.stride,
        pad=level.pad,
        in_shape=level.in_shape,
        out_shape=level.out_shape,
        weight_count=level.weight_count,
        ops_per_output=level.ops_per_output,
        has_relu=True,
        pool_mode=level.pool_mode,
        groups=level.groups,
    )


def independent_units(levels: Sequence[Level]) -> List[FusionUnit]:
    """Each windowed level is its own partition unit (Section V-B search)."""
    return [FusionUnit((level,)) for level in levels]


def pooling_merged_units(levels: Sequence[Level]) -> List[FusionUnit]:
    """Merge each pooling level into the preceding convolution (Figure 2).

    "we assume that each subsampling (pooling) layer is merged into its
    preceding convolutional layer. Because subsampling is a local operation
    that reduces the amount of data, this always reduces bandwidth without
    any drawback."
    """
    units: List[FusionUnit] = []
    for level in levels:
        if level.is_pool and units:
            units[-1] = FusionUnit(units[-1].levels + (level,))
        else:
            units.append(FusionUnit((level,)))
    return units
