"""Layer specifications for the CNN intermediate representation.

Each spec is an immutable description of one network layer — enough
geometry for the fusion analysis (kernel, stride, padding, channels) and
for the functional simulator (which adds weights at execution time).
Specs are *unbound*: they do not know their input shape until placed in a
:class:`~repro.nn.network.Network`, which performs shape inference.
"""

from __future__ import annotations

from dataclasses import dataclass

from .shapes import ShapeError, TensorShape, conv_output_extent


@dataclass(frozen=True)
class LayerSpec:
    """Base class for all layer specifications."""

    name: str

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        raise NotImplementedError

    def weight_count(self, input_shape: TensorShape) -> int:
        """Number of learned parameters (weights + biases)."""
        return 0

    def ops_per_output(self, input_shape: TensorShape) -> int:
        """Arithmetic operations (multiplies + adds) per output element.

        The paper counts both multiplications and additions (Section III-C:
        a 3x3xN filter costs ``9N`` multiplications and ``9N`` additions,
        the additions including the bias).
        """
        return 0

    def total_ops(self, input_shape: TensorShape) -> int:
        """Total arithmetic operations to evaluate the layer once."""
        out = self.output_shape(input_shape)
        return out.elements * self.ops_per_output(input_shape)


@dataclass(frozen=True)
class WindowedSpec(LayerSpec):
    """A layer that slides a K x K window with stride S (conv or pool).

    The pyramid geometry of Section III-B applies uniformly to any windowed
    layer, which is why the fusion model treats convolution and pooling with
    the same ``D = S*D' + K - S`` rule.
    """

    kernel: int = 1
    stride: int = 1

    def spatial_output(self, input_shape: TensorShape) -> "tuple[int, int]":
        return (
            conv_output_extent(input_shape.height, self.kernel, self.stride),
            conv_output_extent(input_shape.width, self.kernel, self.stride),
        )


@dataclass(frozen=True)
class ConvSpec(WindowedSpec):
    """2-D convolution: M filters of N x K x K weights applied with stride S.

    ``padding`` zeros are added around the input before convolving; the
    accelerator realizes this as an explicit padding layer (Section VI-B
    counts padding layers separately), but carrying it on the conv spec
    keeps network descriptions readable.

    ``groups`` supports AlexNet's grouped convolutions (conv2/4/5 use two
    groups); grouping divides the weight count and per-output work but does
    not change feature-map geometry, which is what the fusion model needs.
    """

    out_channels: int = 1
    padding: int = 0
    groups: int = 1
    bias: bool = True

    def __post_init__(self) -> None:
        if self.out_channels <= 0:
            raise ShapeError(f"{self.name}: out_channels must be positive")
        if self.groups <= 0 or self.out_channels % self.groups != 0:
            raise ShapeError(f"{self.name}: groups must divide out_channels")
        if self.padding < 0:
            raise ShapeError(f"{self.name}: padding must be non-negative")

    def in_channels_per_group(self, input_shape: TensorShape) -> int:
        if input_shape.channels % self.groups != 0:
            raise ShapeError(f"{self.name}: groups must divide in_channels")
        return input_shape.channels // self.groups

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        padded = input_shape.padded(self.padding)
        height, width = self.spatial_output(padded)
        return TensorShape(self.out_channels, height, width)

    def weight_count(self, input_shape: TensorShape) -> int:
        per_filter = self.in_channels_per_group(input_shape) * self.kernel * self.kernel
        weights = self.out_channels * per_filter
        biases = self.out_channels if self.bias else 0
        return weights + biases

    def ops_per_output(self, input_shape: TensorShape) -> int:
        # K*K*N multiplies plus K*K*N adds (the adds include the bias),
        # matching the paper's 9N + 9N accounting for a 3x3xN filter.
        n = self.in_channels_per_group(input_shape)
        return 2 * self.kernel * self.kernel * n


@dataclass(frozen=True)
class PoolSpec(WindowedSpec):
    """Subsampling (pooling) layer: K x K window, stride S, max or average."""

    mode: str = "max"

    def __post_init__(self) -> None:
        if self.mode not in ("max", "avg"):
            raise ShapeError(f"{self.name}: pooling mode must be 'max' or 'avg'")

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        height, width = self.spatial_output(input_shape)
        return TensorShape(input_shape.channels, height, width)

    def ops_per_output(self, input_shape: TensorShape) -> int:
        # K*K - 1 comparisons (or adds) per pooled value; negligible next to
        # convolution, but counted for completeness.
        return self.kernel * self.kernel - 1


@dataclass(frozen=True)
class ReLUSpec(LayerSpec):
    """Rectified linear unit: f(x) = max(x, 0), elementwise."""

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape

    def ops_per_output(self, input_shape: TensorShape) -> int:
        return 1


@dataclass(frozen=True)
class PadSpec(LayerSpec):
    """Explicit zero-padding layer (the accelerator's padding stage)."""

    pad: int = 1

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape.padded(self.pad)


@dataclass(frozen=True)
class LRNSpec(LayerSpec):
    """Local response normalization (AlexNet). Geometry-preserving.

    The paper omits LRN from its accelerators for comparability with [19]
    (Section VI-B) but notes it would add a single pipeline stage; we carry
    it in the IR so AlexNet is described faithfully and the fusion analysis
    can skip it explicitly.
    """

    size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75
    k: float = 2.0

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape

    def ops_per_output(self, input_shape: TensorShape) -> int:
        # size multiplies + size adds for the window sum, plus the scale.
        return 2 * self.size + 2


@dataclass(frozen=True)
class FCSpec(LayerSpec):
    """Fully connected layer. Out of scope for fusion (Section II: weight-
    dominated), carried so zoo networks are complete end to end."""

    out_features: int = 1
    bias: bool = True

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return TensorShape(self.out_features, 1, 1)

    def weight_count(self, input_shape: TensorShape) -> int:
        weights = self.out_features * input_shape.elements
        return weights + (self.out_features if self.bias else 0)

    def ops_per_output(self, input_shape: TensorShape) -> int:
        return 2 * input_shape.elements
