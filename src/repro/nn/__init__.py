"""Network intermediate representation: shapes, layers, networks, stages."""

from .layers import (
    ConvSpec,
    FCSpec,
    LayerSpec,
    LRNSpec,
    PadSpec,
    PoolSpec,
    ReLUSpec,
)
from .network import LayerBinding, Network
from .parse import ParseError, dump_network, parse_network
from .shapes import BYTES_PER_WORD, ShapeError, TensorShape, conv_output_extent, input_extent_for
from .stages import FusionUnit, Level, extract_levels, independent_units, pooling_merged_units

__all__ = [
    "BYTES_PER_WORD",
    "ConvSpec",
    "FCSpec",
    "FusionUnit",
    "LayerBinding",
    "LayerSpec",
    "Level",
    "LRNSpec",
    "Network",
    "ParseError",
    "PadSpec",
    "PoolSpec",
    "ReLUSpec",
    "ShapeError",
    "TensorShape",
    "conv_output_extent",
    "dump_network",
    "extract_levels",
    "independent_units",
    "input_extent_for",
    "parse_network",
    "pooling_merged_units",
]
