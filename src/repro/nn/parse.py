"""Torch-style network descriptions: parse and serialize.

The paper built its exploration tool "by extending the Torch machine
learning framework ... Our tool reads a Torch description of a CNN"
(Section V-A). This module accepts the textual form Torch 7 prints for
``nn.Sequential`` containers and converts it to the :mod:`repro.nn` IR
(and back), so network definitions can live in plain files::

    nn.Sequential {
      nn.SpatialConvolution(3 -> 64, 3x3, 1,1, 1,1)
      nn.ReLU
      nn.SpatialMaxPooling(2x2, 2,2)
      nn.Linear(802816 -> 4096)
    }

Supported modules: SpatialConvolution (``nIn -> nOut, KxK, dW,dH[,
padW,padH]``), SpatialMaxPooling / SpatialAveragePooling (``KxK, dW,dH``),
ReLU, SpatialZeroPadding, SpatialCrossMapLRN, Linear, and the inert
modules Torch dumps alongside them (Dropout, View, LogSoftMax, SoftMax),
which carry no geometry and are skipped.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .layers import (
    ConvSpec,
    FCSpec,
    LayerSpec,
    LRNSpec,
    PadSpec,
    PoolSpec,
    ReLUSpec,
)
from ..errors import ConfigError
from .network import Network
from .shapes import TensorShape


class ParseError(ConfigError):
    """Raised for malformed network descriptions (still a ``ValueError``
    via :class:`~repro.errors.ConfigError`)."""


_SKIPPED = ("nn.Dropout", "nn.View", "nn.LogSoftMax", "nn.SoftMax",
            "nn.Reshape", "nn.Identity")

_CONV_RE = re.compile(
    r"nn\.SpatialConvolution\(\s*(\d+)\s*->\s*(\d+)\s*,\s*(\d+)x(\d+)"
    r"(?:\s*,\s*(\d+)\s*,\s*(\d+))?(?:\s*,\s*(\d+)\s*,\s*(\d+))?\s*\)"
)
_POOL_RE = re.compile(
    r"nn\.Spatial(Max|Average)Pooling\(\s*(\d+)x(\d+)\s*,\s*(\d+)\s*,\s*(\d+)\s*\)"
)
_PAD_RE = re.compile(
    r"nn\.SpatialZeroPadding\(\s*(-?\d+)\s*,\s*(-?\d+)\s*,\s*(-?\d+)\s*,\s*(-?\d+)\s*\)"
)
_LRN_RE = re.compile(
    r"nn\.SpatialCrossMapLRN\(\s*(\d+)"
    r"(?:\s*,\s*([\d.eE+-]+))?(?:\s*,\s*([\d.eE+-]+))?(?:\s*,\s*([\d.eE+-]+))?\s*\)"
)
_LINEAR_RE = re.compile(r"nn\.Linear\(\s*(\d+)\s*->\s*(\d+)\s*\)")


def _clean_lines(text: str) -> List[str]:
    lines: List[str] = []
    for raw in text.splitlines():
        line = raw.split("--", 1)[0].strip()  # Lua-style comments
        if not line or line in ("{", "}"):
            continue
        # Strip Torch's "(1): " index prefixes and container headers.
        line = re.sub(r"^\(\d+\):\s*", "", line)
        if line.startswith("nn.Sequential"):
            continue
        lines.append(line.rstrip("{").strip())
    return lines


def parse_network(text: str, name: str = "parsed",
                  input_shape: Optional[TensorShape] = None,
                  input_size: Optional[Tuple[int, int]] = None) -> Network:
    """Parse a Torch-style description into a :class:`Network`.

    The textual format carries channel counts but not the spatial input
    size, so provide either ``input_shape`` outright or ``input_size``
    (height, width) to pair with the first layer's input channels.
    """
    lines = _clean_lines(text)
    specs: List[LayerSpec] = []
    first_channels: Optional[int] = None
    counters = {"conv": 0, "pool": 0, "relu": 0, "pad": 0, "lrn": 0, "fc": 0}

    def next_name(kind: str) -> str:
        counters[kind] += 1
        return f"{kind}{counters[kind]}"

    for line in lines:
        if any(line.startswith(prefix) for prefix in _SKIPPED):
            continue
        if line.startswith("nn.ReLU"):
            specs.append(ReLUSpec(next_name("relu")))
            continue
        match = _CONV_RE.match(line)
        if match:
            n_in, n_out, kw, kh = (int(match.group(i)) for i in range(1, 5))
            if kw != kh:
                raise ParseError(f"non-square kernel in {line!r}")
            dw = int(match.group(5)) if match.group(5) else 1
            dh = int(match.group(6)) if match.group(6) else 1
            if dw != dh:
                raise ParseError(f"anisotropic stride in {line!r}")
            pad_w = int(match.group(7)) if match.group(7) else 0
            pad_h = int(match.group(8)) if match.group(8) else 0
            if pad_w != pad_h:
                raise ParseError(f"anisotropic padding in {line!r}")
            if first_channels is None:
                first_channels = n_in
            specs.append(ConvSpec(next_name("conv"), out_channels=n_out,
                                  kernel=kw, stride=dw, padding=pad_w))
            continue
        match = _POOL_RE.match(line)
        if match:
            mode = "max" if match.group(1) == "Max" else "avg"
            kw, kh, dw, dh = (int(match.group(i)) for i in range(2, 6))
            if kw != kh or dw != dh:
                raise ParseError(f"anisotropic pooling in {line!r}")
            specs.append(PoolSpec(next_name("pool"), kernel=kw, stride=dw, mode=mode))
            continue
        match = _PAD_RE.match(line)
        if match:
            pads = {int(match.group(i)) for i in range(1, 5)}
            if len(pads) != 1:
                raise ParseError(f"asymmetric padding in {line!r}")
            specs.append(PadSpec(next_name("pad"), pad=pads.pop()))
            continue
        match = _LRN_RE.match(line)
        if match:
            size = int(match.group(1))
            alpha = float(match.group(2)) if match.group(2) else 1e-4
            beta = float(match.group(3)) if match.group(3) else 0.75
            k = float(match.group(4)) if match.group(4) else 1.0
            specs.append(LRNSpec(next_name("lrn"), size=size, alpha=alpha,
                                 beta=beta, k=k))
            continue
        match = _LINEAR_RE.match(line)
        if match:
            specs.append(FCSpec(next_name("fc"), out_features=int(match.group(2))))
            continue
        raise ParseError(f"unrecognized module: {line!r}")

    if not specs:
        raise ParseError("description contains no layers")
    if input_shape is None:
        if input_size is None:
            raise ParseError("provide input_shape or input_size")
        if first_channels is None:
            raise ParseError("no convolution to infer input channels from; "
                             "provide input_shape")
        input_shape = TensorShape(first_channels, *input_size)
    return Network(name, input_shape, specs)


def dump_network(network: Network) -> str:
    """Serialize a network back to the Torch-style textual form."""
    lines = ["nn.Sequential {"]
    channels = network.input_shape.channels
    for index, binding in enumerate(network, start=1):
        spec = binding.spec
        if isinstance(spec, ConvSpec):
            entry = (f"nn.SpatialConvolution({channels} -> {spec.out_channels}, "
                     f"{spec.kernel}x{spec.kernel}, {spec.stride},{spec.stride}")
            if spec.padding:
                entry += f", {spec.padding},{spec.padding}"
            entry += ")"
            channels = spec.out_channels
        elif isinstance(spec, PoolSpec):
            kind = "Max" if spec.mode == "max" else "Average"
            entry = (f"nn.Spatial{kind}Pooling({spec.kernel}x{spec.kernel}, "
                     f"{spec.stride},{spec.stride})")
        elif isinstance(spec, ReLUSpec):
            entry = "nn.ReLU"
        elif isinstance(spec, PadSpec):
            entry = (f"nn.SpatialZeroPadding({spec.pad}, {spec.pad}, "
                     f"{spec.pad}, {spec.pad})")
        elif isinstance(spec, LRNSpec):
            entry = (f"nn.SpatialCrossMapLRN({spec.size}, {spec.alpha}, "
                     f"{spec.beta}, {spec.k})")
        elif isinstance(spec, FCSpec):
            entry = f"nn.Linear({binding.input_shape.elements} -> {spec.out_features})"
            channels = spec.out_features
        else:
            raise ParseError(f"cannot serialize {spec!r}")
        lines.append(f"  ({index}): {entry}")
    lines.append("}")
    return "\n".join(lines) + "\n"


def parse_graph(text: str, name: str = "parsed-graph"):
    """Parse the DAG text form (see :mod:`repro.graph.parse`).

    Re-exported here lazily so ``repro.nn`` stays a leaf of
    ``repro.graph`` — the graph package imports this module for
    :class:`ParseError`.
    """
    from ..graph.parse import parse_graph as _parse_graph

    return _parse_graph(text, name=name)


def dump_graph(network) -> str:
    """Serialize a :class:`~repro.graph.GraphNetwork` to the DAG text
    form (lazy counterpart of :func:`parse_graph`)."""
    from ..graph.parse import dump_graph as _dump_graph

    return _dump_graph(network)
