"""Tensor shapes and the output-size arithmetic used throughout the paper.

A feature map is a 3-D volume of ``channels`` maps, each ``height x width``
(the paper's N maps of R x C values, Figure 1). Convolution and pooling
share the same output-size rule: for a K x K window applied with stride S
over an R-sized extent, the output extent is ``(R - K) / S + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Bytes per feature-map element. The paper uses single-precision floats
#: throughout ("we use single-precision floating point for all designs").
BYTES_PER_WORD = 4


class ShapeError(ConfigError):
    """Raised when layer geometry does not divide evenly or is impossible.

    A :class:`~repro.errors.ConfigError` (hence still a ``ValueError``):
    impossible geometry is a bad request, not a simulation fault.
    """


def conv_output_extent(extent: int, kernel: int, stride: int) -> int:
    """Output size of a K-wide window applied with stride S over ``extent``.

    This is the paper's ``R' = (R - K)/S + 1`` (Section II). Raises
    :class:`ShapeError` when the window does not fit or the slide does not
    divide evenly, because a hardware dataflow cannot silently truncate.
    """
    if kernel <= 0 or stride <= 0:
        raise ShapeError(f"kernel and stride must be positive, got K={kernel} S={stride}")
    if extent < kernel:
        raise ShapeError(f"window K={kernel} does not fit in extent {extent}")
    if (extent - kernel) % stride != 0:
        raise ShapeError(
            f"extent {extent} with K={kernel}, S={stride} leaves a partial window"
        )
    return (extent - kernel) // stride + 1


def input_extent_for(output_extent: int, kernel: int, stride: int) -> int:
    """Inverse of :func:`conv_output_extent`: the paper's pyramid rule.

    Section III-B: ``D = S * D' + K - S`` — the input-tile extent a layer
    needs to produce an output tile of ``output_extent``.
    """
    if output_extent <= 0:
        raise ShapeError(f"output extent must be positive, got {output_extent}")
    if kernel <= 0 or stride <= 0:
        raise ShapeError(f"kernel and stride must be positive, got K={kernel} S={stride}")
    return stride * output_extent + kernel - stride


@dataclass(frozen=True, order=True)
class TensorShape:
    """Shape of a feature-map volume: ``channels`` maps of ``height x width``."""

    channels: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.height <= 0 or self.width <= 0:
            raise ShapeError(f"all dimensions must be positive: {self}")

    @property
    def elements(self) -> int:
        """Total number of values in the volume."""
        return self.channels * self.height * self.width

    @property
    def bytes(self) -> int:
        """Storage footprint in bytes at fp32."""
        return self.elements * BYTES_PER_WORD

    def with_channels(self, channels: int) -> "TensorShape":
        return TensorShape(channels, self.height, self.width)

    def padded(self, pad: int) -> "TensorShape":
        """Shape after adding ``pad`` zeros on every spatial border."""
        if pad < 0:
            raise ShapeError(f"padding must be non-negative, got {pad}")
        return TensorShape(self.channels, self.height + 2 * pad, self.width + 2 * pad)

    def __str__(self) -> str:
        return f"{self.channels}x{self.height}x{self.width}"
