"""Network container: an ordered list of layer specs with shape inference.

A :class:`Network` binds each :class:`~repro.nn.layers.LayerSpec` to its
inferred input and output shapes, the way the paper's Torch-based
exploration tool reads a network description and derives per-layer
geometry (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from ..errors import ConfigError
from .layers import ConvSpec, FCSpec, LayerSpec, PoolSpec
from .shapes import ShapeError, TensorShape


@dataclass(frozen=True)
class LayerBinding:
    """A layer spec bound to its position and inferred shapes."""

    index: int
    spec: LayerSpec
    input_shape: TensorShape
    output_shape: TensorShape

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def weight_count(self) -> int:
        return self.spec.weight_count(self.input_shape)

    @property
    def total_ops(self) -> int:
        return self.spec.total_ops(self.input_shape)


class Network:
    """An ordered feed-forward stack of layers with inferred shapes.

    Parameters
    ----------
    name:
        Human-readable network name (e.g. ``"VGGNet-E"``).
    input_shape:
        Shape of the network input (channels, height, width).
    layers:
        Layer specs in evaluation order. Names must be unique; shape
        inference validates that every window fits its input.
    """

    def __init__(self, name: str, input_shape: TensorShape, layers: Sequence[LayerSpec]):
        self.name = name
        self.input_shape = input_shape
        self._bindings: List[LayerBinding] = []

        seen = set()
        shape = input_shape
        for index, spec in enumerate(layers):
            if spec.name in seen:
                raise ShapeError(f"duplicate layer name {spec.name!r} in {name}")
            seen.add(spec.name)
            out = spec.output_shape(shape)
            self._bindings.append(LayerBinding(index, spec, shape, out))
            shape = out

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[LayerBinding]:
        return iter(self._bindings)

    def __getitem__(self, key) -> LayerBinding:
        if isinstance(key, str):
            return self.layer(key)
        return self._bindings[key]

    # -- lookups ------------------------------------------------------------

    def layer(self, name: str) -> LayerBinding:
        """Look a layer up by name."""
        for binding in self._bindings:
            if binding.name == name:
                return binding
        raise KeyError(f"no layer named {name!r} in {self.name}")

    @property
    def bindings(self) -> List[LayerBinding]:
        return list(self._bindings)

    @property
    def output_shape(self) -> TensorShape:
        if not self._bindings:
            return self.input_shape
        return self._bindings[-1].output_shape

    @property
    def specs(self) -> List[LayerSpec]:
        return [binding.spec for binding in self._bindings]

    def conv_layers(self) -> List[LayerBinding]:
        """Convolutional layers in order."""
        return [b for b in self._bindings if isinstance(b.spec, ConvSpec)]

    def pool_layers(self) -> List[LayerBinding]:
        return [b for b in self._bindings if isinstance(b.spec, PoolSpec)]

    def feature_extractor(self) -> "Network":
        """The network up to (excluding) the first fully connected layer.

        The paper's scope: "we focus on the convolutional layers (as well as
        the subsampling layers that typically surround them), and not on the
        final fully connected layers" (Section II).
        """
        specs: List[LayerSpec] = []
        for binding in self._bindings:
            if isinstance(binding.spec, FCSpec):
                break
            specs.append(binding.spec)
        return Network(self.name, self.input_shape, specs)

    def prefix(self, num_convs: int) -> "Network":
        """The network truncated after its ``num_convs``-th convolutional
        layer, keeping any pooling/ReLU layers in between.

        This implements "the first five convolutional layers of VGGNet-E"
        style slicing. Non-conv layers *after* the last kept convolution are
        dropped (the paper's five-layer VGG design ends at conv3_1's output,
        before pool/ReLU that follow it would appear — ReLU attached to the
        final conv is kept because it is part of the conv stage).
        """
        if num_convs <= 0:
            raise ConfigError("num_convs must be positive", num_convs=num_convs)
        specs: List[LayerSpec] = []
        seen_convs = 0
        for binding in self._bindings:
            if isinstance(binding.spec, FCSpec):
                break
            if isinstance(binding.spec, ConvSpec):
                if seen_convs == num_convs:
                    break
                seen_convs += 1
                specs.append(binding.spec)
            else:
                specs.append(binding.spec)
        if seen_convs < num_convs:
            raise ConfigError(
                f"{self.name} has only {seen_convs} conv layers, asked for {num_convs}",
                network=self.name, conv_layers=seen_convs, requested=num_convs,
            )
        # Trim trailing layers that are not part of the last conv stage
        # (keep ReLU immediately after the final conv; drop trailing pools
        # and pads that would start the next stage).
        while specs:
            from .layers import PadSpec, PoolSpec, ReLUSpec  # local to avoid cycle noise

            last = specs[-1]
            if isinstance(last, (PadSpec,)):
                specs.pop()
            elif isinstance(last, PoolSpec):
                specs.pop()
            else:
                break
        return Network(f"{self.name}[:conv{num_convs}]", self.input_shape, specs)

    def fingerprint(self) -> str:
        """Content-based identity: a stable hash of layer specs + input shape.

        Two networks fingerprint equally iff they have the same input
        shape and the same ordered layer specs (type, name, and every
        parameter) — the display ``name`` is presentation, not content,
        so it is excluded. Used as the plan-cache key by
        :mod:`repro.serve`: a served network resolves to the same
        compiled plan however it was constructed (zoo builder, parser,
        or by hand), while any geometry change — reordered layers, a
        different kernel or channel count — produces a new key.
        """
        import dataclasses
        import hashlib
        import json

        payload = {
            "input": [self.input_shape.channels, self.input_shape.height,
                      self.input_shape.width],
            "layers": [
                {"type": type(b.spec).__name__,
                 **{f.name: getattr(b.spec, f.name)
                    for f in dataclasses.fields(b.spec)}}
                for b in self._bindings
            ],
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()
        return digest[:16]

    # -- aggregate statistics (Figure 2 style) -------------------------------

    def total_weights(self) -> int:
        return sum(b.weight_count for b in self._bindings)

    def total_ops(self) -> int:
        return sum(b.total_ops for b in self._bindings)

    def __repr__(self) -> str:
        return f"Network({self.name!r}, {len(self)} layers, in={self.input_shape})"
