"""Model zoo: networks used by the paper's evaluation."""

from .alexnet import alexnet
from .misc import googlenet_stem, nin_cifar, zfnet
from .toynet import toynet
from .vgg import vgg16, vggnet_e

__all__ = ["alexnet", "googlenet_stem", "nin_cifar", "toynet", "vgg16", "vggnet_e", "zfnet"]
