"""VGG networks (Simonyan & Zisserman, 2014).

``vggnet_e`` (configuration E, a.k.a. VGG-19) is the paper's main
evaluation target: 16 convolutional layers in five blocks with 2x2
stride-2 max pooling between blocks, all convolutions 3x3 stride-1 pad-1.
``vgg16`` (configuration D) is provided for completeness.
"""

from __future__ import annotations

from typing import List, Sequence

from ..layers import ConvSpec, FCSpec, LayerSpec, PoolSpec, ReLUSpec
from ..network import Network
from ..shapes import TensorShape


def _vgg(name: str, block_sizes: Sequence[int], include_classifier: bool) -> Network:
    channels = (64, 128, 256, 512, 512)
    layers: List[LayerSpec] = []
    for block, (count, width) in enumerate(zip(block_sizes, channels), start=1):
        for i in range(1, count + 1):
            layers.append(
                ConvSpec(f"conv{block}_{i}", out_channels=width, kernel=3,
                         stride=1, padding=1)
            )
            layers.append(ReLUSpec(f"relu{block}_{i}"))
        layers.append(PoolSpec(f"pool{block}", kernel=2, stride=2))
    if include_classifier:
        layers += [
            FCSpec("fc6", out_features=4096),
            ReLUSpec("relu6"),
            FCSpec("fc7", out_features=4096),
            ReLUSpec("relu7"),
            FCSpec("fc8", out_features=1000),
        ]
    return Network(name, TensorShape(3, 224, 224), layers)


def vggnet_e(include_classifier: bool = True) -> Network:
    """VGGNet-E (VGG-19): blocks of 2, 2, 4, 4, 4 convolutions."""
    return _vgg("VGGNet-E", (2, 2, 4, 4, 4), include_classifier)


def vgg16(include_classifier: bool = True) -> Network:
    """VGG-16 (configuration D): blocks of 2, 2, 3, 3, 3 convolutions."""
    return _vgg("VGG-16", (2, 2, 3, 3, 3), include_classifier)
