"""Additional sequential CNNs for fusion studies.

The paper names GoogLeNet as a motivating trend ("using kernels as small
as 1x1 to allow an increased network depth"); its inception blocks
branch, but the *stem* — where virtually all feature-map traffic lives —
is sequential and a natural fusion target. ZFNet is AlexNet's
higher-resolution successor; Network-in-Network (NiN) stresses the
1x1-convolution case where fusion overlap buffers vanish (K - S = 0).
"""

from __future__ import annotations

from ..layers import ConvSpec, FCSpec, LRNSpec, PoolSpec, ReLUSpec
from ..network import Network
from ..shapes import TensorShape


def googlenet_stem(include_lrn: bool = True) -> Network:
    """GoogLeNet's pre-inception stem (Szegedy et al., 2015).

    conv7x7/2 -> pool3x3/2 -> conv1x1 -> conv3x3 -> pool3x3/2; the 1x1
    "reduce" layer makes this the paper's small-kernel example. Input is
    taken at 231x231 so every stride-2 window tiles exactly (the
    customary ceil-mode pooling is not a dataflow the paper's accelerator
    uses).
    """
    layers = [
        ConvSpec("conv1", out_channels=64, kernel=7, stride=2, padding=2),
        ReLUSpec("relu1"),
        PoolSpec("pool1", kernel=3, stride=2),
    ]
    if include_lrn:
        layers.append(LRNSpec("norm1"))
    layers += [
        ConvSpec("conv2_reduce", out_channels=64, kernel=1, stride=1),
        ReLUSpec("relu2r"),
        ConvSpec("conv2", out_channels=192, kernel=3, stride=1, padding=1),
        ReLUSpec("relu2"),
    ]
    if include_lrn:
        layers.append(LRNSpec("norm2"))
    layers.append(PoolSpec("pool2", kernel=3, stride=2))
    return Network("GoogLeNet-stem", TensorShape(3, 231, 231), layers)


def zfnet(include_classifier: bool = True) -> Network:
    """ZFNet (Zeiler & Fergus, 2014): AlexNet with a 7x7/2 first layer.

    Input taken at 233x233 (vs the published 225) so every window tiles
    exactly without ceil-mode pooling."""
    layers = [
        ConvSpec("conv1", out_channels=96, kernel=7, stride=2, padding=1),
        ReLUSpec("relu1"),
        PoolSpec("pool1", kernel=3, stride=2),
        LRNSpec("norm1"),
        ConvSpec("conv2", out_channels=256, kernel=5, stride=2),
        ReLUSpec("relu2"),
        PoolSpec("pool2", kernel=3, stride=2),
        LRNSpec("norm2"),
        ConvSpec("conv3", out_channels=384, kernel=3, stride=1, padding=1),
        ReLUSpec("relu3"),
        ConvSpec("conv4", out_channels=384, kernel=3, stride=1, padding=1),
        ReLUSpec("relu4"),
        ConvSpec("conv5", out_channels=256, kernel=3, stride=1, padding=1),
        ReLUSpec("relu5"),
        PoolSpec("pool5", kernel=3, stride=2),
    ]
    if include_classifier:
        layers += [
            FCSpec("fc6", out_features=4096),
            ReLUSpec("relu6"),
            FCSpec("fc7", out_features=4096),
            ReLUSpec("relu7"),
            FCSpec("fc8", out_features=1000),
        ]
    return Network("ZFNet", TensorShape(3, 233, 233), layers)


def nin_cifar() -> Network:
    """Network-in-Network for CIFAR (Lin et al., 2014): each block is a
    spatial convolution followed by two 1x1 "mlpconv" layers. The 1x1
    layers have K = S, so fusing across them needs no reuse buffering at
    their inputs — a useful boundary case."""
    layers = [
        ConvSpec("conv1", out_channels=192, kernel=5, stride=1, padding=2),
        ReLUSpec("relu1"),
        ConvSpec("cccp1", out_channels=160, kernel=1, stride=1),
        ReLUSpec("relu_c1"),
        ConvSpec("cccp2", out_channels=96, kernel=1, stride=1),
        ReLUSpec("relu_c2"),
        PoolSpec("pool1", kernel=2, stride=2),
        ConvSpec("conv2", out_channels=192, kernel=5, stride=1, padding=2),
        ReLUSpec("relu2"),
        ConvSpec("cccp3", out_channels=192, kernel=1, stride=1),
        ReLUSpec("relu_c3"),
        ConvSpec("cccp4", out_channels=192, kernel=1, stride=1),
        ReLUSpec("relu_c4"),
        PoolSpec("pool2", kernel=2, stride=2),
        ConvSpec("conv3", out_channels=192, kernel=3, stride=1, padding=1),
        ReLUSpec("relu3"),
        ConvSpec("cccp5", out_channels=192, kernel=1, stride=1),
        ReLUSpec("relu_c5"),
        ConvSpec("cccp6", out_channels=10, kernel=1, stride=1),
        ReLUSpec("relu_c6"),
        PoolSpec("pool3", kernel=8, stride=8, mode="avg"),
    ]
    return Network("NiN-CIFAR", TensorShape(3, 32, 32), layers)
