"""The Figure 3 example network: two 3x3 convolutions over a 7x7 input.

Layer 1 has M filters of 3x3xN weights; Layer 2 has P filters of 3x3xM.
With a 1x1 pyramid tip, Layer 1 operates on a 5x5xN input tile and
produces a 3x3xM intermediate region — exactly the black pyramid of the
paper's walkthrough. Used by tests and the Figure 3 benchmark.
"""

from __future__ import annotations

from ..layers import ConvSpec, ReLUSpec
from ..network import Network
from ..shapes import TensorShape


def toynet(n: int = 4, m: int = 6, p: int = 8, size: int = 7,
           with_relu: bool = False) -> Network:
    """Build the two-layer example network of Figure 3.

    Parameters default to small channel counts so tests stay fast; the
    geometry (7x7 input, two 3x3 stride-1 convolutions) matches the figure.
    """
    layers = [ConvSpec("layer1", out_channels=m, kernel=3, stride=1)]
    if with_relu:
        layers.append(ReLUSpec("relu1"))
    layers.append(ConvSpec("layer2", out_channels=p, kernel=3, stride=1))
    if with_relu:
        layers.append(ReLUSpec("relu2"))
    return Network("ToyNet", TensorShape(n, size, size), layers)
