"""AlexNet (Krizhevsky et al., 2012) — the paper's first evaluation target.

Geometry follows the Caffe reference model: 227x227x3 input, five
convolutional layers (conv2/4/5 grouped), three 3x3 stride-2 max-pooling
layers, and two LRN layers. The paper fuses conv1..conv2 (with ReLU,
padding, and pool1) and omits LRN for comparability with Zhang et al. [19]
(Section VI-B); LRN is still described here so the IR is faithful.
"""

from __future__ import annotations

from ..layers import ConvSpec, FCSpec, LRNSpec, PoolSpec, ReLUSpec
from ..network import Network
from ..shapes import TensorShape


def alexnet(include_lrn: bool = True, include_classifier: bool = True,
            grouped: bool = True) -> Network:
    """Build AlexNet.

    Parameters
    ----------
    include_lrn:
        Keep the two local-response-normalization layers. The fusion
        analysis skips them either way (the paper omits them).
    include_classifier:
        Keep the three fully connected layers (out of fusion scope).
    grouped:
        Use the original two-group convolutions for conv2/conv4/conv5.
        Grouping halves those layers' weights and per-output work but does
        not change feature-map geometry.
    """
    groups = 2 if grouped else 1
    layers = [
        ConvSpec("conv1", out_channels=96, kernel=11, stride=4, padding=0),
        ReLUSpec("relu1"),
    ]
    if include_lrn:
        layers.append(LRNSpec("norm1"))
    layers += [
        PoolSpec("pool1", kernel=3, stride=2),
        ConvSpec("conv2", out_channels=256, kernel=5, stride=1, padding=2, groups=groups),
        ReLUSpec("relu2"),
    ]
    if include_lrn:
        layers.append(LRNSpec("norm2"))
    layers += [
        PoolSpec("pool2", kernel=3, stride=2),
        ConvSpec("conv3", out_channels=384, kernel=3, stride=1, padding=1),
        ReLUSpec("relu3"),
        ConvSpec("conv4", out_channels=384, kernel=3, stride=1, padding=1, groups=groups),
        ReLUSpec("relu4"),
        ConvSpec("conv5", out_channels=256, kernel=3, stride=1, padding=1, groups=groups),
        ReLUSpec("relu5"),
        PoolSpec("pool5", kernel=3, stride=2),
    ]
    if include_classifier:
        layers += [
            FCSpec("fc6", out_features=4096),
            ReLUSpec("relu6"),
            FCSpec("fc7", out_features=4096),
            ReLUSpec("relu7"),
            FCSpec("fc8", out_features=1000),
        ]
    return Network("AlexNet", TensorShape(3, 227, 227), layers)
