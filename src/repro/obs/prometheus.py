"""Prometheus text exposition of obs signals.

Renders counters, gauges, timeline rates, and SLO monitors in the
Prometheus text format (version 0.0.4): one ``# TYPE`` header per
metric family, dotted repro names mapped to underscore families, and
the repo's ``family.metric[label]`` convention mapped to a
``{label="..."}`` selector::

    faults.injected[dram_stall]  ->  repro_faults_injected{label="dram_stall"}

The exposition is a *snapshot* — this repo has no HTTP scrape endpoint;
the text lands in a file (``serve-bench --prom``) or on stdout
(``repro slo --prom -``) where a node-exporter-style textfile collector
can pick it up.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .registry import Registry
from .slo import SLOMonitor

_INVALID = re.compile(r"[^a-zA-Z0-9_]")
_LABELED = re.compile(r"^(?P<base>[^\[\]]+)\[(?P<label>[^\[\]]+)\]$")


def metric_name(name: str, prefix: str = "repro") -> Tuple[str, str]:
    """Map a dotted repro name to ``(family, label)`` (label may be "")."""
    label = ""
    match = _LABELED.match(name)
    if match:
        name, label = match.group("base"), match.group("label")
    family = _INVALID.sub("_", f"{prefix}_{name}")
    return family, label


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _sample(family: str, label: str, value: float) -> str:
    selector = f'{{label="{_escape(label)}"}}' if label else ""
    if value == int(value) and abs(value) < 2**53:
        return f"{family}{selector} {int(value)}"
    return f"{family}{selector} {value:.9g}"


def _emit(families: Dict[str, Tuple[str, List[str]]], name: str,
          kind: str, value: float, help_text: str = "") -> None:
    family, label = metric_name(name)
    if family not in families:
        families[family] = (kind, [])
    families[family][1].append(_sample(family, label, value))


def prometheus_text(registry: Optional[Registry] = None,
                    counters: Optional[Dict[str, float]] = None,
                    gauges: Optional[Dict[str, float]] = None,
                    slos: Iterable[SLOMonitor] = (),
                    extra: Optional[Dict[str, float]] = None) -> str:
    """Render one exposition snapshot.

    ``registry`` contributes its counters/gauges and event-store totals;
    ``counters``/``gauges``/``extra`` add ad-hoc values (``extra`` maps
    dotted names to gauge samples); ``slos`` adds one block per monitor
    (burn rate, violations, observed quantile).
    """
    families: Dict[str, Tuple[str, List[str]]] = {}
    if registry is not None:
        for name, value in sorted(registry.counters.items()):
            _emit(families, name, "counter", value)
        for name, value in sorted(registry.gauges.items()):
            _emit(families, name, "gauge", value)
        for name, (count, total) in sorted(registry.events.totals().items()):
            _emit(families, f"{name}.events", "counter", count)
            if total != count:
                _emit(families, f"{name}.events_sum", "counter", total)
    for name, value in sorted((counters or {}).items()):
        _emit(families, name, "counter", value)
    for source in (gauges, extra):
        for name, value in sorted((source or {}).items()):
            _emit(families, name, "gauge", value)
    for monitor in slos:
        s = monitor.summary()
        base = f"slo.{monitor.target.name}"
        _emit(families, f"{base}.observed", "counter", s["observed"])
        _emit(families, f"{base}.violations", "counter", s["violations"])
        _emit(families, f"{base}.alerts", "counter", s["alerts"])
        _emit(families, f"{base}.burn_rate", "gauge", s["burn_rate"])
        _emit(families, f"{base}.latency_quantile_ms", "gauge",
              s[f"p{monitor.target.percentile:g}_ms"])
    lines: List[str] = []
    for family in sorted(families):
        kind, samples = families[family]
        lines.append(f"# TYPE {family} {kind}")
        lines.extend(samples)
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, **kwargs: Any) -> None:
    """Write the exposition to ``path`` (``-`` for stdout)."""
    text = prometheus_text(**kwargs)
    if path == "-":
        print(text, end="")
        return
    with open(path, "w") as handle:
        handle.write(text)
