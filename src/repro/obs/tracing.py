"""Per-request tracing: span trees over the columnar event store.

A :class:`Tracer` records BEGIN/END/INSTANT rows into an
:class:`~repro.obs.events.EventStore`; each served request is one
*trace* (its id is minted by the serving front end) whose rows
reconstruct into a span tree::

    serve.request                       (root: submit -> future done)
      serve.enqueue                     (queue wait; again after requeue)
      serve.batch                       (batch assembly + execution)
        serve.execute                   (the compiled plan call)
          serve.retry                   (instant: fault-repair attempt)
      serve.requeue                     (instant: worker crash recovery)

Recording is append-only and thread-safe (the store locks); nothing is
reconstructed until a reader asks. Exports: :meth:`Tracer.to_jsonl`
(one completed span per line) and :meth:`Tracer.chrome_events` — Chrome
Trace Event Format complete events on one track per pipeline stage,
joined per request by flow events (``ph`` s/f) so a request's hop from
queue to worker is a clickable arrow in Perfetto.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import BEGIN, END, INSTANT, Event, EventStore


@dataclass
class TraceSpan:
    """One reconstructed span (END may be missing: ``end_s is None``)."""

    trace_id: int
    span_id: int
    parent_id: int
    name: str
    start_s: float
    end_s: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["TraceSpan"] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.end_s is not None

    @property
    def wall_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def walk(self) -> Iterable["TraceSpan"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["TraceSpan"]:
        return [s for s in self.walk() if s.name == name]


class Tracer:
    """Mints span ids and records span lifecycles columnarly."""

    def __init__(self, store: Optional[EventStore] = None,
                 epoch: Optional[float] = None):
        self.store = store if store is not None else EventStore()
        self.epoch = epoch if epoch is not None else time.perf_counter()
        self._ids = itertools.count()
        self._open: Dict[int, int] = {}  # span_id -> begin row (open spans)
        self._lock = threading.Lock()

    def now(self) -> float:
        return time.perf_counter() - self.epoch

    # -- recording -------------------------------------------------------------

    def begin(self, name: str, trace_id: int, parent_id: int = -1,
              **attrs: Any) -> int:
        """Open a span; returns its id (pass to :meth:`end`)."""
        with self._lock:
            span_id = next(self._ids)
        row = self.store.append(name, self.now(), kind=BEGIN, trace=trace_id,
                                span=span_id, parent=parent_id,
                                attrs=attrs or None)
        with self._lock:
            self._open[span_id] = row
        return span_id

    def end(self, span_id: int, **attrs: Any) -> None:
        """Close a span. Idempotent: a second end of the same id is a
        no-op, so crash-recovery paths may close defensively."""
        if span_id < 0:
            return
        with self._lock:
            row = self._open.pop(span_id, None)
            if row is None:
                return
            trace = int(self.store.trace[row])
            parent = int(self.store.parent[row])
            name = self.store.names[int(self.store.name[row])]
        self.store.append(name, self.now(), kind=END, trace=trace,
                          span=span_id, parent=parent, attrs=attrs or None)

    def instant(self, name: str, trace_id: int, parent_id: int = -1,
                value: float = 1.0, **attrs: Any) -> None:
        """Record a zero-duration trace event (retry, requeue, ...)."""
        self.store.append(name, self.now(), value=value, kind=INSTANT,
                          trace=trace_id, span=-1, parent=parent_id,
                          attrs=attrs or None)

    def span_at(self, name: str, trace_id: int, start_s: float,
                end_s: float, parent_id: int = -1, **attrs: Any) -> int:
        """Record an already-finished span at explicit timestamps.

        ``start_s``/``end_s`` are offsets on this tracer's clock (the
        :func:`time.perf_counter` value minus :attr:`epoch`). Used to
        replay timing a plan measured internally — e.g. per-device
        pipeline stage windows — into the trace after the fact.
        """
        with self._lock:
            span_id = next(self._ids)
        self.store.append(name, start_s, kind=BEGIN, trace=trace_id,
                          span=span_id, parent=parent_id,
                          attrs=attrs or None)
        self.store.append(name, end_s, kind=END, trace=trace_id,
                          span=span_id, parent=parent_id, attrs=None)
        return span_id

    @property
    def open_spans(self) -> int:
        with self._lock:
            return len(self._open)

    # -- reconstruction --------------------------------------------------------

    def trace_ids(self) -> List[int]:
        ids = sorted({e.trace for e in self.store.rows() if e.trace >= 0})
        return ids

    def spans(self, trace_id: int) -> List[TraceSpan]:
        """Every span of one trace, in begin order (flat)."""
        by_id: Dict[int, TraceSpan] = {}
        order: List[TraceSpan] = []
        instants: List[Event] = []
        for event in self.store.rows(trace=trace_id):
            if event.kind == BEGIN:
                span = TraceSpan(trace_id=trace_id, span_id=event.span,
                                 parent_id=event.parent, name=event.name,
                                 start_s=event.ts,
                                 attrs=dict(event.attrs or {}))
                by_id[event.span] = span
                order.append(span)
            elif event.kind == END:
                span = by_id.get(event.span)
                if span is not None:
                    span.end_s = event.ts
                    if event.attrs:
                        span.attrs.update(event.attrs)
            elif event.kind == INSTANT:
                instants.append(event)
        for event in instants:
            parent = by_id.get(event.parent)
            if parent is not None:
                parent.events.append(event)
        return order

    def span_tree(self, trace_id: int) -> List[TraceSpan]:
        """Root spans of one trace, children nested."""
        order = self.spans(trace_id)
        by_id = {span.span_id: span for span in order}
        roots: List[TraceSpan] = []
        for span in order:
            parent = by_id.get(span.parent_id)
            if parent is not None:
                parent.children.append(span)
            else:
                roots.append(span)
        return roots

    def complete(self, trace_id: int) -> bool:
        """True when the trace has spans and every one of them ended."""
        order = self.spans(trace_id)
        return bool(order) and all(span.complete for span in order)

    # -- export ----------------------------------------------------------------

    def to_jsonl(self, path: str) -> int:
        """One JSON object per span (plus instants), trace-major order."""
        n = 0
        with open(path, "w") as handle:
            for trace_id in self.trace_ids():
                for span in self.spans(trace_id):
                    record: Dict[str, Any] = {
                        "trace": span.trace_id, "span": span.span_id,
                        "parent": span.parent_id, "name": span.name,
                        "start_s": span.start_s, "end_s": span.end_s,
                        "complete": span.complete,
                    }
                    if span.attrs:
                        record["attrs"] = span.attrs
                    if span.events:
                        record["events"] = [
                            {"name": e.name, "ts": e.ts,
                             **({"attrs": e.attrs} if e.attrs else {})}
                            for e in span.events]
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                    n += 1
        return n

    #: span name -> (track id, track label); unknown names share a track.
    _LANES: Dict[str, Tuple[int, str]] = {
        "serve.request": (1, "requests"),
        "serve.enqueue": (2, "queue"),
        "serve.batch": (3, "batch"),
        "serve.execute": (4, "execute"),
    }
    _OTHER_LANE = (9, "other")
    #: first track id of the per-device lanes (spans carrying a
    #: ``device`` attribute get one track per distinct device, in
    #: first-seen order).
    _DEVICE_LANE_BASE = 20

    def chrome_events(self, pid: int = 10) -> List[Dict[str, Any]]:
        """Trace Event Format events: one track per stage + flow arrows.

        Spans tagged with a ``device`` attribute (pipeline stage spans)
        each get their own track — one lane per device, labelled with
        the device name — so a sharded plan's per-stage occupancy reads
        like a hardware pipeline diagram in Perfetto.
        """
        events: List[Dict[str, Any]] = [
            {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
             "args": {"name": "serve.trace"}},
        ]
        lanes_used: Dict[int, str] = {}
        device_lanes: Dict[str, int] = {}
        for trace_id in self.trace_ids():
            order = self.spans(trace_id)
            for span in order:
                device = span.attrs.get("device")
                if device is not None:
                    tid = device_lanes.setdefault(
                        str(device), self._DEVICE_LANE_BASE
                        + len(device_lanes))
                    label = f"device {device}"
                else:
                    tid, label = self._LANES.get(span.name, self._OTHER_LANE)
                lanes_used[tid] = label
                args: Dict[str, Any] = {"trace": span.trace_id,
                                        "span": span.span_id}
                args.update(span.attrs)
                events.append({
                    "name": span.name, "cat": "serve", "ph": "X",
                    "pid": pid, "tid": tid,
                    "ts": span.start_s * 1e6,
                    "dur": max(span.wall_s, 1e-7) * 1e6,
                    "args": args,
                })
                for inst in span.events:
                    events.append({
                        "name": inst.name, "cat": "serve", "ph": "i",
                        "pid": pid, "tid": tid, "ts": inst.ts * 1e6,
                        "s": "t", "args": dict(inst.attrs or {}),
                    })
            # flow arrows: queue -> execute hops of this request
            hops = [s for s in order
                    if s.name in ("serve.enqueue", "serve.execute")
                    and s.complete]
            for a, b in zip(hops, hops[1:]):
                tid_a, _ = self._LANES.get(a.name, self._OTHER_LANE)
                tid_b, _ = self._LANES.get(b.name, self._OTHER_LANE)
                events.append({"name": "request", "cat": "serve.flow",
                               "ph": "s", "id": trace_id, "pid": pid,
                               "tid": tid_a, "ts": a.end_s * 1e6})
                events.append({"name": "request", "cat": "serve.flow",
                               "ph": "f", "bp": "e", "id": trace_id,
                               "pid": pid, "tid": tid_b,
                               "ts": b.start_s * 1e6})
        for tid, label in sorted(lanes_used.items()):
            events.append({"ph": "M", "pid": pid, "tid": tid,
                           "name": "thread_name", "args": {"name": label}})
        return events

    def write_chrome_trace(self, path: str) -> None:
        payload = {"traceEvents": self.chrome_events(),
                   "displayTimeUnit": "ms",
                   "otherData": {"tool": "repro.obs.tracing"}}
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
