"""Mirror simulator :class:`~repro.sim.trace.TrafficTrace` totals into
registry counters.

The simulators keep their own event-level traffic trace (it predates the
registry and tests compare schedules event by event). This bridge copies
the totals — overall and per label — into the global registry so every
run report and metrics JSON shows DRAM bytes next to the timing spans,
matching the trace exactly.

Duck-typed on purpose: anything exposing ``dram_read_bytes``,
``dram_write_bytes``, ``ops``, ``macs``, and ``by_label()`` works, so
this module never imports :mod:`repro.sim`.
"""

from __future__ import annotations

from .registry import enabled, get_registry


def mirror_traffic(trace, prefix: str) -> None:
    """Add a trace's totals to the global registry under ``prefix``.

    Counters are additive, so mirroring several runs under one prefix
    accumulates their traffic — the same convention the trace itself
    uses when reused across runs.
    """
    if not enabled():
        return
    registry = get_registry()
    registry.add(f"{prefix}.dram_read_bytes", trace.dram_read_bytes)
    registry.add(f"{prefix}.dram_write_bytes", trace.dram_write_bytes)
    registry.add(f"{prefix}.dram_total_bytes", trace.dram_total_bytes)
    registry.add(f"{prefix}.ops", trace.ops)
    registry.add(f"{prefix}.macs", trace.macs)
    for label, (read_bytes, write_bytes, ops) in trace.by_label().items():
        if read_bytes:
            registry.add(f"{prefix}.dram_read_bytes[{label}]", read_bytes)
        if write_bytes:
            registry.add(f"{prefix}.dram_write_bytes[{label}]", write_bytes)
        if ops:
            registry.add(f"{prefix}.ops[{label}]", ops)
