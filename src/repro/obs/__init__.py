"""repro.obs — spans, counters, events, timelines, traces, and SLOs.

The observability substrate for the reproduction, in two generations:

* **gen 1 (profiling)** — a zero-dependency instrumentation core
  (:mod:`repro.obs.registry`) of hierarchical spans, counters, and
  gauges that the explorer, simulators, and pipeline model feed, plus
  exporters: a human run report (:mod:`repro.obs.report`), a metrics
  snapshot (:meth:`Registry.to_dict`), and Chrome Trace Event Format
  (:mod:`repro.obs.chrome_trace`) loadable in Perfetto.
* **gen 2 (production telemetry)** — a columnar event store
  (:mod:`repro.obs.events`: typed chunked column arrays, windowed
  aggregation), timeline metrics with bounded-memory streaming
  quantiles (:mod:`repro.obs.timeline`), per-request tracing with span
  trees and flow-event export (:mod:`repro.obs.tracing`), SLO monitors
  with error-budget burn-rate alerts (:mod:`repro.obs.slo`), and
  Prometheus text exposition (:mod:`repro.obs.prometheus`).

Instrumentation is **off by default**: :func:`span` returns a shared
no-op context manager and :func:`add_counter` / :func:`emit_event` are
a flag check, so the instrumented hot paths run at full speed in
ordinary test runs. Turn it on around a region with :func:`capture`::

    from repro import obs

    with obs.capture() as registry:
        result = explore(vggnet_e(), num_convs=5)
    print(obs.render_report(registry))

or globally with ``python -m repro <command> --profile``. Request
tracing and SLO monitoring in :mod:`repro.serve` are *opt-in per
service* (``InferenceService(trace=True, slo=...)``) and independent of
the global profiling switch.
"""

from .benchdiff import BenchDiff, MetricDelta, diff_benchmarks, render_diff
from .chrome_trace import chrome_trace, write_chrome_trace
from .events import BEGIN, END, INSTANT, POINT, Column, Event, EventStore
from .prometheus import prometheus_text, write_prometheus
from .registry import (
    NOOP_SPAN,
    PipelineRecord,
    Registry,
    SpanRecord,
    add_counter,
    capture,
    disable,
    emit_event,
    enable,
    enabled,
    get_registry,
    record_pipeline,
    set_gauge,
    span,
)
from .report import render_report
from .slo import SLOMonitor, SLOTarget, render_slos
from .timeline import RollingQuantile, Timeline
from .tracing import Tracer, TraceSpan
from .traffic import mirror_traffic

__all__ = [
    "BEGIN",
    "BenchDiff",
    "Column",
    "END",
    "Event",
    "EventStore",
    "INSTANT",
    "MetricDelta",
    "NOOP_SPAN",
    "POINT",
    "PipelineRecord",
    "Registry",
    "RollingQuantile",
    "SLOMonitor",
    "SLOTarget",
    "SpanRecord",
    "Timeline",
    "TraceSpan",
    "Tracer",
    "add_counter",
    "capture",
    "chrome_trace",
    "diff_benchmarks",
    "disable",
    "emit_event",
    "enable",
    "enabled",
    "get_registry",
    "mirror_traffic",
    "prometheus_text",
    "record_pipeline",
    "render_diff",
    "render_report",
    "render_slos",
    "set_gauge",
    "span",
    "write_chrome_trace",
    "write_prometheus",
]
