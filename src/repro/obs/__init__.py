"""repro.obs — spans, counters, gauges, and trace export.

The observability substrate for the reproduction: a zero-dependency
instrumentation core (:mod:`repro.obs.registry`) that the explorer,
simulators, and pipeline model feed, plus exporters — a human-readable
run report (:mod:`repro.obs.report`), a machine-readable snapshot
(:meth:`Registry.to_dict`), and Chrome Trace Event Format
(:mod:`repro.obs.chrome_trace`) loadable in Perfetto.

Instrumentation is **off by default**: :func:`span` returns a shared
no-op context manager and :func:`add_counter` is a flag check, so the
instrumented hot paths run at full speed in ordinary test runs. Turn it
on around a region with :func:`capture`::

    from repro import obs

    with obs.capture() as registry:
        result = explore(vggnet_e(), num_convs=5)
    print(obs.render_report(registry))

or globally with ``python -m repro <command> --profile``.
"""

from .chrome_trace import chrome_trace, write_chrome_trace
from .registry import (
    NOOP_SPAN,
    PipelineRecord,
    Registry,
    SpanRecord,
    add_counter,
    capture,
    disable,
    enable,
    enabled,
    get_registry,
    record_pipeline,
    set_gauge,
    span,
)
from .report import render_report
from .traffic import mirror_traffic

__all__ = [
    "NOOP_SPAN",
    "PipelineRecord",
    "Registry",
    "SpanRecord",
    "add_counter",
    "capture",
    "chrome_trace",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "mirror_traffic",
    "record_pipeline",
    "render_report",
    "set_gauge",
    "span",
    "write_chrome_trace",
]
