"""Compare two benchmark-summary JSON files and flag regressions.

The benchmark suite records machine-readable summaries
(``benchmarks/results/BENCH_*.json``, or any ``--json`` output of
``serve-bench``/``tune``/``stats``). :func:`diff_benchmarks` flattens
both files to dotted-path numeric leaves, pairs them up, and classifies
each delta using a direction heuristic on the metric name — latencies
and cycle counts should go *down*, throughputs and hit counts *up* —
so "regression" means "moved the bad way by more than the threshold".

Metrics present in only one file are reported as added/removed, never
as regressions: growing a benchmark must not fail the diff.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..errors import ConfigError

#: Name fragments whose metrics improve downward (time, traffic, misses).
LOWER_IS_BETTER = (
    "wall_s", "wall_ms", "_ms", "latency", "cycles", "seconds", "elapsed",
    "bytes", "misses", "evictions", "failed", "rejected", "stall",
    "retries", "violations", "burn_rate", "energy", "interval", "pending",
    "shed", "shed_rate", "wrong_answers", "p999", "guaranteed_shed",
    "fill_drain_cycles", "link_bytes", "interval_dsp", "blocked",
    "lock_wait_s", "max_hold_s",
)

#: Name fragments whose metrics improve upward (rates, wins, coverage).
HIGHER_IS_BETTER = (
    "requests_per_s", "per_s", "hits", "completed", "speedup",
    "improvement", "throughput", "utilization", "submitted", "ok",
    "throughput_per_dsp", "stage_utilization", "items_per_s",
)


def direction(path: str) -> int:
    """-1 when lower is better, +1 when higher is better, 0 unknown.

    The *last* matching fragment wins so ``cache.hits_ms`` reads as a
    latency, not a hit count; ties go to the longer fragment.
    """
    leaf = path.lower()
    best: Tuple[int, int] = (-1, 0)  # (fragment length, direction)
    for fragment in LOWER_IS_BETTER:
        if fragment in leaf and len(fragment) > best[0]:
            best = (len(fragment), -1)
    for fragment in HIGHER_IS_BETTER:
        if fragment in leaf and len(fragment) > best[0]:
            best = (len(fragment), +1)
    return best[1]


def flatten(obj: Any, prefix: str = "") -> Dict[str, float]:
    """Dotted-path map of every numeric leaf (bools excluded)."""
    out: Dict[str, float] = {}
    if isinstance(obj, dict):
        for key in sorted(obj):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(obj[key], path))
    elif isinstance(obj, (list, tuple)):
        for index, item in enumerate(obj):
            out.update(flatten(item, f"{prefix}[{index}]"))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


@dataclass(frozen=True)
class MetricDelta:
    """One paired metric across the two files."""

    path: str
    before: float
    after: float
    #: -1 lower-is-better, +1 higher-is-better, 0 unknown direction
    direction: int

    @property
    def change(self) -> float:
        """Relative change (after - before) / |before|; inf from zero."""
        if self.before == 0:
            return 0.0 if self.after == 0 else float("inf")
        return (self.after - self.before) / abs(self.before)

    def regressed(self, threshold: float) -> bool:
        """Moved the *bad* way by more than ``threshold`` (fraction)."""
        if self.direction == 0:
            return False
        bad = self.change if self.direction < 0 else -self.change
        return bad > threshold

    def improved(self, threshold: float) -> bool:
        if self.direction == 0:
            return False
        good = -self.change if self.direction < 0 else self.change
        return good > threshold


@dataclass
class BenchDiff:
    """The full comparison of one baseline/current file pair."""

    baseline: str
    current: str
    deltas: List[MetricDelta]
    added: List[str]
    removed: List[str]
    threshold: float

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed(self.threshold)]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.improved(self.threshold)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline,
            "current": self.current,
            "threshold": self.threshold,
            "compared": len(self.deltas),
            "added": list(self.added),
            "removed": list(self.removed),
            "regressions": [d.path for d in self.regressions],
            "improvements": [d.path for d in self.improvements],
        }


def _load(path: str) -> Dict[str, float]:
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as err:
        raise ConfigError(f"cannot read benchmark file: {err}", path=path)
    except json.JSONDecodeError as err:
        raise ConfigError("benchmark file is not valid JSON",
                          path=path, error=str(err))
    if not isinstance(payload, dict):
        raise ConfigError("benchmark file must hold a JSON object",
                          path=path)
    return flatten(payload)


def diff_benchmarks(baseline: str, current: str,
                    threshold: float = 0.10) -> BenchDiff:
    """Compare two benchmark JSON files (paths), pairing numeric leaves."""
    if threshold < 0:
        raise ConfigError("threshold must be >= 0", threshold=threshold)
    base = _load(baseline)
    cur = _load(current)
    deltas = [MetricDelta(path=path, before=base[path], after=cur[path],
                          direction=direction(path))
              for path in sorted(base) if path in cur]
    return BenchDiff(
        baseline=baseline, current=current, deltas=deltas,
        added=sorted(set(cur) - set(base)),
        removed=sorted(set(base) - set(cur)),
        threshold=threshold,
    )


def _fmt_change(delta: MetricDelta) -> str:
    if delta.change == float("inf"):
        return "   +inf"
    return f"{delta.change:+7.1%}"


def render_diff(diff: BenchDiff, verbose: bool = False) -> str:
    """Human-readable comparison table (regressions always listed)."""
    lines = [
        f"bench-diff: {diff.baseline} -> {diff.current} "
        f"({len(diff.deltas)} metrics compared, "
        f"threshold {diff.threshold:.0%})",
    ]
    flagged = diff.regressions
    better = diff.improvements
    shown = (diff.deltas if verbose
             else flagged + better)
    if shown:
        width = max(len(d.path) for d in shown) + 2
        for delta in shown:
            if delta.regressed(diff.threshold):
                tag = "REGRESSED"
            elif delta.improved(diff.threshold):
                tag = "improved"
            else:
                tag = "~" if delta.direction else "?"
            arrow = {-1: "v better", 1: "^ better", 0: ""}[delta.direction]
            lines.append(
                f"  {delta.path:<{width}s} {delta.before:>14,.4g} -> "
                f"{delta.after:>14,.4g}  {_fmt_change(delta)}  "
                f"{tag:<9s} {arrow}")
    if diff.added:
        lines.append(f"  added   : {', '.join(diff.added[:8])}"
                     + (" ..." if len(diff.added) > 8 else ""))
    if diff.removed:
        lines.append(f"  removed : {', '.join(diff.removed[:8])}"
                     + (" ..." if len(diff.removed) > 8 else ""))
    lines.append(f"  {len(flagged)} regressions, {len(better)} improvements")
    return "\n".join(lines)
