"""Zero-dependency instrumentation core: spans, counters, gauges.

A :class:`Registry` accumulates three kinds of signal:

* **spans** — hierarchical timed regions (wall *and* CPU time) opened
  with :meth:`Registry.span`, nesting tracked by an explicit stack;
* **counters** — monotonically increasing numeric totals
  (:meth:`Registry.add`), e.g. partitions scored or DRAM bytes moved;
* **gauges** — last-write-wins numeric values (:meth:`Registry.gauge`).

It also stores :class:`PipelineRecord` snapshots of discrete-event
pipeline schedules so exporters can render one timeline track per fused
stage (see :mod:`repro.obs.chrome_trace`).

The module-level API (:func:`span`, :func:`add_counter`, :func:`set_gauge`,
:func:`record_pipeline`) routes to a process-global registry and is a
**no-op while disabled** — a single flag check and a shared do-nothing
context manager — so instrumented hot paths cost nothing in ordinary
test runs. Enable explicitly with :func:`enable` / :func:`capture`.

Only the standard library is used; importing this module never pulls in
NumPy or any other subsystem of the reproduction.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .events import EventStore


@dataclass
class SpanRecord:
    """One closed timed region."""

    id: int
    parent_id: Optional[int]
    name: str
    depth: int
    start_s: float  # seconds since the registry epoch
    end_s: float
    cpu_s: float    # process CPU seconds consumed inside the span
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class PipelineRecord:
    """Snapshot of one simulated pipeline schedule.

    ``stage_finish[item][stage]`` holds completion cycles exactly as
    :class:`repro.hw.pipeline.PipelineSchedule` reports them; the record
    keeps plain tuples so the observability layer never imports ``hw``.
    """

    name: str
    stage_names: Tuple[str, ...]
    stage_cycles: Tuple[int, ...]
    num_items: int
    makespan: int
    stage_finish: Tuple[Tuple[int, ...], ...]

    def busy_cycles(self, stage: int) -> int:
        return self.num_items * self.stage_cycles[stage]

    def idle_cycles(self, stage: int) -> int:
        return self.makespan - self.busy_cycles(stage)

    def utilization(self, stage: int) -> float:
        if self.makespan == 0:
            return 0.0
        return self.busy_cycles(stage) / self.makespan

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "num_items": self.num_items,
            "makespan": self.makespan,
            "stages": [
                {
                    "name": name,
                    "cycles_per_item": cycles,
                    "busy_cycles": self.busy_cycles(i),
                    "idle_cycles": self.idle_cycles(i),
                    "utilization": self.utilization(i),
                }
                for i, (name, cycles) in enumerate(
                    zip(self.stage_names, self.stage_cycles))
            ],
        }


class _ActiveSpan:
    """Context manager for one open span of an enabled registry."""

    __slots__ = ("_registry", "_record", "_cpu0")

    def __init__(self, registry: "Registry", record: SpanRecord, cpu0: float):
        self._registry = registry
        self._record = record
        self._cpu0 = cpu0

    def set(self, **attrs: Any) -> "_ActiveSpan":
        """Attach attributes to the span while it is open."""
        self._record.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        record.end_s = time.perf_counter() - self._registry.epoch
        record.cpu_s = time.process_time() - self._cpu0
        stack = self._registry._stack
        if stack and stack[-1] is record:
            stack.pop()
        return False


class _NoopSpan:
    """Shared do-nothing span returned while instrumentation is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Registry:
    """Accumulates spans, counters, gauges, and pipeline snapshots.

    A registry's methods always record — the global on/off switch lives
    in the module-level convenience functions, so standalone registries
    (benchmark harnesses, tests) work without flipping global state.
    """

    def __init__(self, max_event_rows: Optional[int] = None) -> None:
        self.epoch = time.perf_counter()
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.pipelines: List[PipelineRecord] = []
        self.events = EventStore(max_rows=max_event_rows)
        self._stack: List[SpanRecord] = []
        self._next_id = 0
        self.__dict__.pop("_timeline", None)  # reset() re-runs __init__

    @property
    def timeline(self):
        """A :class:`~repro.obs.timeline.Timeline` view over the store
        (built lazily so importing the registry stays dependency-free)."""
        view = self.__dict__.get("_timeline")
        if view is None:
            from .timeline import Timeline

            view = self.__dict__["_timeline"] = Timeline(
                bucket_s=0.1, store=self.events, epoch=self.epoch)
        return view

    # -- recording -------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a timed region; close it by exiting the context manager."""
        now = time.perf_counter() - self.epoch
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            id=self._next_id,
            parent_id=parent.id if parent is not None else None,
            name=name,
            depth=len(self._stack),
            start_s=now,
            end_s=now,
            cpu_s=0.0,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(record)
        self._stack.append(record)
        return _ActiveSpan(self, record, time.process_time())

    def add(self, name: str, value: float = 1) -> None:
        """Increment a monotonic counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins gauge."""
        self.gauges[name] = value

    def emit(self, name: str, value: float = 1.0,
             attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record one timestamped event into the columnar store.

        Unlike :meth:`add`, events keep *when*: windowed rates and
        bucketed series are derivable afterwards via :attr:`timeline`.
        """
        self.events.append(name, time.perf_counter() - self.epoch,
                           value=value, attrs=attrs)

    def record_pipeline(self, stage_names: Sequence[str],
                        stage_cycles: Sequence[int],
                        num_items: int, makespan: int,
                        stage_finish: Sequence[Sequence[int]],
                        name: Optional[str] = None) -> PipelineRecord:
        """Store a pipeline schedule snapshot (auto-named when unnamed)."""
        record = PipelineRecord(
            name=name or f"pipeline{len(self.pipelines)}",
            stage_names=tuple(stage_names),
            stage_cycles=tuple(int(c) for c in stage_cycles),
            num_items=num_items,
            makespan=makespan,
            stage_finish=tuple(tuple(int(t) for t in row) for row in stage_finish),
        )
        self.pipelines.append(record)
        return record

    # -- introspection ---------------------------------------------------------

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def reset(self) -> None:
        self.__init__()

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable snapshot of everything recorded."""
        return {
            "spans": [
                {
                    "id": s.id,
                    "parent_id": s.parent_id,
                    "name": s.name,
                    "depth": s.depth,
                    "start_s": s.start_s,
                    "wall_s": s.wall_s,
                    "cpu_s": s.cpu_s,
                    "attrs": dict(s.attrs),
                }
                for s in self.spans
            ],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "pipelines": [p.to_dict() for p in self.pipelines],
            "events": self.events.summary(),
        }


# -- process-global switchboard ------------------------------------------------

_REGISTRY = Registry()
_ENABLED = False


def get_registry() -> Registry:
    """The process-global registry (recording only while enabled)."""
    return _REGISTRY


def enabled() -> bool:
    return _ENABLED


def enable(fresh: bool = True) -> Registry:
    """Turn the global instrumentation on (optionally on a new registry)."""
    global _REGISTRY, _ENABLED
    if fresh:
        _REGISTRY = Registry()
    _ENABLED = True
    return _REGISTRY


def disable() -> None:
    global _ENABLED
    _ENABLED = False


@contextmanager
def capture(fresh: bool = True) -> Iterator[Registry]:
    """Enable instrumentation for a block; restore the prior state after.

    The yielded registry stays readable after the block exits, so callers
    can render reports from it once the instrumented work is done.
    """
    global _REGISTRY, _ENABLED
    prior_registry, prior_enabled = _REGISTRY, _ENABLED
    registry = enable(fresh=fresh)
    try:
        yield registry
    finally:
        _REGISTRY, _ENABLED = prior_registry, prior_enabled


def span(name: str, **attrs: Any):
    """Open a span on the global registry; free when disabled."""
    if not _ENABLED:
        return NOOP_SPAN
    return _REGISTRY.span(name, **attrs)


def add_counter(name: str, value: float = 1) -> None:
    if _ENABLED:
        _REGISTRY.add(name, value)


def set_gauge(name: str, value: float) -> None:
    if _ENABLED:
        _REGISTRY.gauge(name, value)


def emit_event(name: str, value: float = 1.0,
               attrs: Optional[Dict[str, Any]] = None) -> None:
    """Record a timestamped event on the global registry; free when
    disabled (a single flag check, like :func:`add_counter`)."""
    if _ENABLED:
        _REGISTRY.emit(name, value, attrs=attrs)


def record_pipeline(stage_names: Sequence[str], stage_cycles: Sequence[int],
                    num_items: int, makespan: int,
                    stage_finish: Sequence[Sequence[int]],
                    name: Optional[str] = None) -> Optional[PipelineRecord]:
    if not _ENABLED:
        return None
    return _REGISTRY.record_pipeline(stage_names, stage_cycles, num_items,
                                     makespan, stage_finish, name=name)
