"""Columnar event store: typed, chunked column arrays for obs signals.

The first-generation observability layer kept every signal either as a
scalar (counters/gauges) or as a per-event Python object (``SpanRecord``
dicts). That is fine for a profile of one run but collapses under a
serving soak: a million requests × a handful of events each is tens of
millions of Python dicts. This module stores events **columnarly** — one
typed :class:`Column` per field, each a chain of fixed-size
``array.array`` chunks — so an event costs a few machine words, names
are interned once, and windowed aggregation walks contiguous memory.

Schema (one row per event):

========== ====== ====================================================
column     type   meaning
========== ====== ====================================================
``ts``     f64    seconds since the store epoch
``name``   i64    interned event-name id (:meth:`EventStore.name_id`)
``kind``   i64    :data:`POINT` | :data:`BEGIN` | :data:`END` |
                  :data:`INSTANT`
``value``  f64    numeric payload (metric increment, latency, ...)
``trace``  i64    trace id (-1 when the event is not part of a trace)
``span``   i64    span id (-1 likewise)
``parent`` i64    parent span id (-1 for roots)
========== ====== ====================================================

Rare per-event attributes live in a sparse ``{row: dict}`` side table so
the hot columns stay fixed-width. ``max_rows`` bounds memory for long
soaks by evicting whole chunks FIFO (running totals survive eviction).

Only the standard library is used; like the rest of :mod:`repro.obs`
this module never imports NumPy.
"""

from __future__ import annotations

import json
import threading
from array import array
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Event kinds. POINT is a timeline metric sample; BEGIN/END bracket a
#: trace span; INSTANT is a zero-duration trace event (retry, requeue).
POINT = 0
BEGIN = 1
END = 2
INSTANT = 3

KIND_NAMES = {POINT: "point", BEGIN: "begin", END: "end", INSTANT: "instant"}

#: Rows per chunk. 4096 rows × 7 columns × 8 bytes ≈ 224 KB per chunk.
CHUNK_ROWS = 4096


class Column:
    """One typed, chunked, append-only column.

    Values live in fixed-size ``array.array`` chunks; appends never
    reallocate previous chunks, and :meth:`drop_chunks` evicts from the
    front in O(1) per chunk. Indexing is by *absolute* row id — rows
    evicted from the front raise ``IndexError``.
    """

    __slots__ = ("typecode", "chunk_rows", "chunks", "offset")

    def __init__(self, typecode: str, chunk_rows: int = CHUNK_ROWS):
        self.typecode = typecode
        self.chunk_rows = chunk_rows
        self.chunks: List[array] = []
        self.offset = 0  # absolute row id of the first retained row

    def append(self, value: float) -> None:
        if not self.chunks or len(self.chunks[-1]) >= self.chunk_rows:
            self.chunks.append(array(self.typecode))
        self.chunks[-1].append(value)

    def __len__(self) -> int:
        if not self.chunks:
            return self.offset
        return (self.offset + (len(self.chunks) - 1) * self.chunk_rows
                + len(self.chunks[-1]))

    def __getitem__(self, row: int):
        local = row - self.offset
        if local < 0:
            raise IndexError(f"row {row} evicted (offset {self.offset})")
        chunk, at = divmod(local, self.chunk_rows)
        return self.chunks[chunk][at]

    def drop_chunks(self, n: int) -> None:
        """Evict the ``n`` oldest chunks (caller keeps columns in sync)."""
        for _ in range(min(n, len(self.chunks))):
            self.offset += len(self.chunks.pop(0))

    def iter_values(self) -> Iterator:
        for chunk in self.chunks:
            yield from chunk


@dataclass(frozen=True)
class Event:
    """A decoded row view (only materialized on read paths)."""

    row: int
    ts: float
    name: str
    kind: int
    value: float
    trace: int
    span: int
    parent: int
    attrs: Optional[Dict[str, Any]]


class EventStore:
    """Typed, chunked, thread-safe columnar store of obs events.

    Appends take one lock and seven array appends; aggregation reads
    walk the chunks without materializing row objects. ``max_rows``
    (optional) caps resident rows by whole-chunk FIFO eviction —
    :meth:`totals` keeps exact lifetime counts/sums regardless.
    """

    def __init__(self, max_rows: Optional[int] = None,
                 chunk_rows: int = CHUNK_ROWS):
        self._lock = threading.Lock()
        self.chunk_rows = chunk_rows
        self.max_rows = max_rows
        self.names: List[str] = []
        self._name_ids: Dict[str, int] = {}
        self.ts = Column("d", chunk_rows)
        self.name = Column("q", chunk_rows)
        self.kind = Column("q", chunk_rows)
        self.value = Column("d", chunk_rows)
        self.trace = Column("q", chunk_rows)
        self.span = Column("q", chunk_rows)
        self.parent = Column("q", chunk_rows)
        self.attrs: Dict[int, Dict[str, Any]] = {}
        self._totals: Dict[int, List[float]] = {}  # name_id -> [count, sum]
        self.evicted_rows = 0

    # -- writing ---------------------------------------------------------------

    def name_id(self, name: str) -> int:
        """Intern ``name`` (callers may cache the id for hot paths)."""
        nid = self._name_ids.get(name)
        if nid is None:
            with self._lock:
                nid = self._name_ids.get(name)
                if nid is None:
                    nid = len(self.names)
                    self.names.append(name)
                    self._name_ids[name] = nid
        return nid

    def append(self, name: str, ts: float, value: float = 1.0,
               kind: int = POINT, trace: int = -1, span: int = -1,
               parent: int = -1,
               attrs: Optional[Dict[str, Any]] = None) -> int:
        """Append one event row; returns its absolute row id."""
        nid = self.name_id(name)
        with self._lock:
            row = len(self.ts)
            self.ts.append(ts)
            self.name.append(nid)
            self.kind.append(kind)
            self.value.append(value)
            self.trace.append(trace)
            self.span.append(span)
            self.parent.append(parent)
            if attrs:
                self.attrs[row] = dict(attrs)
            total = self._totals.get(nid)
            if total is None:
                self._totals[nid] = [1.0, value]
            else:
                total[0] += 1.0
                total[1] += value
            if self.max_rows is not None and self._resident() > self.max_rows:
                self._evict_locked()
            return row

    def _resident(self) -> int:
        return len(self.ts) - self.ts.offset

    def _evict_locked(self) -> None:
        while len(self.ts.chunks) > 1 and self._resident() > self.max_rows:
            dropped = len(self.ts.chunks[0])
            new_offset = self.ts.offset + dropped
            for column in (self.ts, self.name, self.kind, self.value,
                           self.trace, self.span, self.parent):
                column.drop_chunks(1)
            self.evicted_rows += dropped
            for row in [r for r in self.attrs if r < new_offset]:
                del self.attrs[row]

    # -- reading ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ts)

    @property
    def resident_rows(self) -> int:
        return self._resident()

    def rows(self, name: Optional[str] = None,
             kind: Optional[int] = None,
             trace: Optional[int] = None) -> Iterator[Event]:
        """Iterate retained rows, optionally filtered (decoded lazily)."""
        want_name = self._name_ids.get(name, -2) if name is not None else None
        start = self.ts.offset
        for i, (ts, nid, knd, val, trc, spn, par) in enumerate(zip(
                self.ts.iter_values(), self.name.iter_values(),
                self.kind.iter_values(), self.value.iter_values(),
                self.trace.iter_values(), self.span.iter_values(),
                self.parent.iter_values())):
            if want_name is not None and nid != want_name:
                continue
            if kind is not None and knd != kind:
                continue
            if trace is not None and trc != trace:
                continue
            row = start + i
            yield Event(row=row, ts=ts, name=self.names[int(nid)],
                        kind=int(knd), value=val, trace=int(trc),
                        span=int(spn), parent=int(par),
                        attrs=self.attrs.get(row))

    def totals(self) -> Dict[str, Tuple[int, float]]:
        """Lifetime ``{name: (count, value_sum)}`` (eviction-proof)."""
        return {self.names[nid]: (int(count), total)
                for nid, (count, total) in self._totals.items()}

    def window(self, name: Optional[str] = None,
               t0: float = float("-inf"),
               t1: float = float("inf")) -> Tuple[int, float]:
        """``(count, value_sum)`` of retained POINT rows in ``[t0, t1)``."""
        want = self._name_ids.get(name, -2) if name is not None else None
        count, total = 0, 0.0
        for ts, nid, knd, val in zip(
                self.ts.iter_values(), self.name.iter_values(),
                self.kind.iter_values(), self.value.iter_values()):
            if knd != POINT or ts < t0 or ts >= t1:
                continue
            if want is not None and nid != want:
                continue
            count += 1
            total += val
        return count, total

    def bucket_series(self, name: str,
                      bucket_s: float) -> List[Tuple[float, int, float]]:
        """``[(bucket_start_s, count, value_sum)]`` for one event name.

        Buckets are aligned to multiples of ``bucket_s`` from the store
        epoch; only non-empty buckets are returned, in time order.
        """
        want = self._name_ids.get(name)
        if want is None or bucket_s <= 0:
            return []
        buckets: Dict[int, List[float]] = {}
        for ts, nid, knd, val in zip(
                self.ts.iter_values(), self.name.iter_values(),
                self.kind.iter_values(), self.value.iter_values()):
            if nid != want or knd != POINT:
                continue
            key = int(ts / bucket_s)
            slot = buckets.get(key)
            if slot is None:
                buckets[key] = [1.0, val]
            else:
                slot[0] += 1.0
                slot[1] += val
        return [(key * bucket_s, int(count), total)
                for key, (count, total) in sorted(buckets.items())]

    # -- export ----------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Machine-readable store summary (bounded size: no row dump)."""
        return {
            "rows": len(self),
            "resident_rows": self.resident_rows,
            "evicted_rows": self.evicted_rows,
            "names": len(self.names),
            "totals": {name: {"count": count, "sum": total}
                       for name, (count, total) in sorted(self.totals().items())},
        }

    def to_jsonl(self, path: str) -> int:
        """Dump every retained row as one JSON object per line."""
        n = 0
        with open(path, "w") as handle:
            for event in self.rows():
                record = {
                    "ts": event.ts, "name": event.name,
                    "kind": KIND_NAMES.get(event.kind, event.kind),
                    "value": event.value,
                }
                if event.trace >= 0:
                    record["trace"] = event.trace
                if event.span >= 0:
                    record["span"] = event.span
                if event.parent >= 0:
                    record["parent"] = event.parent
                if event.attrs:
                    record["attrs"] = event.attrs
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                n += 1
        return n
