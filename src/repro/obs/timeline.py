"""Timeline metrics: time-bucketed rates and bounded streaming quantiles.

Counters answer "how much, total"; a timeline answers "how fast, when".
:class:`Timeline` records metric points into a columnar
:class:`~repro.obs.events.EventStore` and aggregates them into aligned
time buckets, so burst shapes, rates, and burn-rate windows are all
derivable after the fact without per-event Python objects.

:class:`RollingQuantile` is the bounded-memory latency summary the
serving stats use: a fixed-size ring of the most recent observations
plus exact lifetime count/sum. Quantiles are computed over the window
(recent behaviour, which is what an SLO cares about) while totals never
saturate — a million-request soak holds ``window`` floats, not a
million.
"""

from __future__ import annotations

import math
import time
from array import array
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigError
from .events import POINT, EventStore


class RollingQuantile:
    """Bounded-memory stream summary: recent-window quantiles, exact totals.

    A ring buffer of the last ``window`` observations. ``quantile`` is
    the nearest-rank quantile over that window; ``count``/``total`` are
    exact over the whole stream. Memory is O(window) forever.
    """

    __slots__ = ("window", "_ring", "_next", "count", "total", "_min", "_max")

    def __init__(self, window: int = 2048):
        if window < 1:
            raise ConfigError("window must be >= 1", window=window)
        self.window = window
        self._ring = array("d")
        self._next = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        if len(self._ring) < self.window:
            self._ring.append(value)
        else:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self.window
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def __len__(self) -> int:
        return len(self._ring)

    def quantile(self, q: float) -> float:
        """Nearest-rank ``q``-percentile (0..100) over the window."""
        if not self._ring:
            return 0.0
        ordered = sorted(self._ring)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    def snapshot(self) -> List[float]:
        """The retained window, oldest-independent (for tests/export)."""
        return list(self._ring)


class Timeline:
    """Time-bucketed metric recording over a columnar event store.

    ``record(name, value)`` appends one POINT row stamped with seconds
    since ``epoch``; ``series``/``rate``/``window_sum`` aggregate rows
    into aligned ``bucket_s`` windows. The store may be shared (the
    global registry passes its own) or owned.
    """

    def __init__(self, bucket_s: float = 1.0,
                 store: Optional[EventStore] = None,
                 epoch: Optional[float] = None,
                 max_rows: Optional[int] = None):
        if bucket_s <= 0:
            raise ConfigError("bucket_s must be positive", bucket_s=bucket_s)
        self.bucket_s = bucket_s
        self.store = store if store is not None else EventStore(max_rows=max_rows)
        self.epoch = epoch if epoch is not None else time.perf_counter()

    # -- recording -------------------------------------------------------------

    def now(self) -> float:
        return time.perf_counter() - self.epoch

    def record(self, name: str, value: float = 1.0,
               ts: Optional[float] = None,
               attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record one metric point (``ts`` defaults to now)."""
        self.store.append(name, ts if ts is not None else self.now(),
                          value=value, kind=POINT, attrs=attrs)

    # -- aggregation -----------------------------------------------------------

    def series(self, name: str,
               bucket_s: Optional[float] = None) -> List[Tuple[float, int, float]]:
        """``[(bucket_start_s, count, value_sum)]`` for one metric."""
        return self.store.bucket_series(name, bucket_s or self.bucket_s)

    def window_sum(self, name: str, t0: float, t1: float) -> float:
        return self.store.window(name, t0, t1)[1]

    def window_count(self, name: str, t0: float, t1: float) -> int:
        return self.store.window(name, t0, t1)[0]

    def rate(self, name: str, window_s: Optional[float] = None,
             now: Optional[float] = None) -> float:
        """Events per second over the trailing ``window_s`` (or all time)."""
        end = now if now is not None else self.now()
        start = end - window_s if window_s is not None else 0.0
        span = end - start
        if span <= 0:
            return 0.0
        return self.store.window(name, start, end)[0] / span

    def value_rate(self, name: str, window_s: Optional[float] = None,
                   now: Optional[float] = None) -> float:
        """Value-sum per second over the trailing window (e.g. bytes/s)."""
        end = now if now is not None else self.now()
        start = end - window_s if window_s is not None else 0.0
        span = end - start
        if span <= 0:
            return 0.0
        return self.store.window(name, start, end)[1] / span

    def names(self) -> List[str]:
        return sorted(self.store.totals())

    def to_dict(self, bucket_s: Optional[float] = None) -> Dict[str, Any]:
        """Machine-readable snapshot: per-metric bucketed series."""
        return {
            "bucket_s": bucket_s or self.bucket_s,
            "series": {
                name: [{"t": t, "count": count, "sum": total}
                       for t, count, total in self.series(name, bucket_s)]
                for name in self.names()
            },
        }
