"""Human-readable run report for a :class:`~repro.obs.registry.Registry`.

One text artifact answers the three questions an optimisation PR has to
answer: where did the time go (span tree, wall + CPU), how much work was
done (counters, with byte counters scaled to MB), and how busy was the
modelled hardware (per-stage pipeline utilization).
"""

from __future__ import annotations

from typing import List

from .registry import PipelineRecord, Registry

_BYTE_SUFFIX = ("_bytes",)


def _fmt_count(name: str, value: float) -> str:
    """Counters named ``*_bytes`` (or ``...bytes[label]``) render as MB."""
    base = name.split("[", 1)[0]
    if base.endswith(_BYTE_SUFFIX):
        return f"{value / 2**20:,.3f} MB"
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.3f}"


#: A parent with more of same-named children than this gets one
#: aggregated line instead of a line per child (per-pyramid spans would
#: otherwise dominate the report; the Chrome trace keeps every one).
MAX_SIBLINGS = 6


def _render_spans(registry: Registry, lines: List[str]) -> None:
    lines.append("spans (wall ms / cpu ms):")
    if not registry.spans:
        lines.append("  (none)")
        return
    children: dict = {}
    for s in registry.spans:
        children.setdefault(s.parent_id, []).append(s)
    width = max(len("  " * s.depth + s.name) for s in registry.spans) + 4

    def emit(span) -> None:
        label = "  " * span.depth + span.name
        attrs = ""
        if span.attrs:
            attrs = "  " + " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        lines.append(f"  {label:<{width}s} {span.wall_s * 1e3:10.3f} "
                     f"{span.cpu_s * 1e3:10.3f}{attrs}")
        walk(span.id)

    def walk(parent_id) -> None:
        group = children.get(parent_id, [])
        by_name: dict = {}
        for child in group:
            by_name.setdefault(child.name, []).append(child)
        for name, peers in by_name.items():
            if len(peers) > MAX_SIBLINGS:
                wall = sum(p.wall_s for p in peers)
                cpu = sum(p.cpu_s for p in peers)
                label = "  " * peers[0].depth + f"{name} x{len(peers)}"
                lines.append(f"  {label:<{width}s} {wall * 1e3:10.3f} "
                             f"{cpu * 1e3:10.3f}  (aggregated)")
            else:
                for peer in peers:
                    emit(peer)

    walk(None)


def _render_counters(registry: Registry, lines: List[str]) -> None:
    lines.append("counters:")
    if not registry.counters:
        lines.append("  (none)")
        return
    width = max(len(name) for name in registry.counters) + 2
    for name in sorted(registry.counters):
        lines.append(f"  {name:<{width}s} {_fmt_count(name, registry.counters[name])}")


def _render_events(registry: Registry, lines: List[str]) -> None:
    totals = registry.events.totals()
    if not totals:
        return
    lines.append("events (columnar store):")
    width = max(len(name) for name in totals) + 2
    for name in sorted(totals):
        count, total = totals[name]
        extra = "" if total == count else f"  (sum {_fmt_count(name, total)})"
        lines.append(f"  {name:<{width}s} {count:,}{extra}")
    if registry.events.evicted_rows:
        lines.append(f"  ({registry.events.evicted_rows:,} old rows evicted; "
                     "totals are lifetime-exact)")


def _render_gauges(registry: Registry, lines: List[str]) -> None:
    if not registry.gauges:
        return
    lines.append("gauges:")
    width = max(len(name) for name in registry.gauges) + 2
    for name in sorted(registry.gauges):
        lines.append(f"  {name:<{width}s} {registry.gauges[name]:g}")


def _render_pipeline(pipe: PipelineRecord, lines: List[str]) -> None:
    lines.append(f"pipeline {pipe.name}: {len(pipe.stage_names)} stages, "
                 f"{pipe.num_items} items, makespan {pipe.makespan:,} cycles")
    width = max((len(n) for n in pipe.stage_names), default=5) + 2
    lines.append(f"  {'stage':<{width}s} {'cyc/item':>10s} {'busy':>12s} "
                 f"{'idle':>12s} {'util':>7s}")
    for i, name in enumerate(pipe.stage_names):
        lines.append(
            f"  {name:<{width}s} {pipe.stage_cycles[i]:>10,} "
            f"{pipe.busy_cycles(i):>12,} {pipe.idle_cycles(i):>12,} "
            f"{pipe.utilization(i):>6.1%}"
        )


def render_report(registry: Registry, title: str = "run report") -> str:
    """Render the full report as plain text."""
    bar = "=" * 64
    lines = [bar, title, bar]
    _render_spans(registry, lines)
    lines.append("")
    _render_counters(registry, lines)
    _render_events(registry, lines)
    _render_gauges(registry, lines)
    for pipe in registry.pipelines:
        lines.append("")
        _render_pipeline(pipe, lines)
    return "\n".join(lines)
