"""SLO monitoring: latency targets, error budgets, burn-rate alerts.

An :class:`SLOTarget` declares the promise ("p99 latency under 5 ms,
with a 1% error budget"); an :class:`SLOMonitor` watches the request
stream and answers whether the promise is being kept *right now*:

* every observation is classified good/bad (latency over target, or an
  outright failure) and recorded into a :class:`~repro.obs.timeline.Timeline`
  bucket, so violation *rates* are reconstructable over time;
* the **burn rate** is the classic SRE ratio — the fraction of requests
  violating the objective divided by the error budget. Burn rate 1.0
  means the budget is being consumed exactly as provisioned; >= the
  alert threshold (default 1.0) trips an alert, tallied locally and
  mirrored as ``slo.burn_alerts[<name>]`` / ``slo.burn_rate[<name>]``
  obs signals;
* latency quantiles come from a bounded
  :class:`~repro.obs.timeline.RollingQuantile`, so a monitor's memory is
  constant no matter how long the soak runs.

Everything is deterministic given the observation sequence: monitors
never read wall clocks beyond the monotonic timeline stamps.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from . import registry as _registry
from .timeline import RollingQuantile, Timeline


@dataclass(frozen=True)
class SLOTarget:
    """One service-level objective over request latency/success."""

    name: str = "latency"
    latency_ms: float = 5.0      #: the latency bound the SLO promises
    percentile: float = 99.0     #: which quantile the bound applies to
    error_budget: float = 0.01   #: allowed violating fraction (0..1]
    window_s: float = 60.0       #: trailing window for windowed burn rate
    alert_threshold: float = 1.0  #: burn rate at/above which to alert

    def __post_init__(self) -> None:
        from ..errors import ConfigError

        if self.latency_ms <= 0:
            raise ConfigError("SLO latency_ms must be positive",
                              latency_ms=self.latency_ms)
        if not 0 < self.error_budget <= 1:
            raise ConfigError("SLO error_budget must be in (0, 1]",
                              error_budget=self.error_budget)
        if not 0 < self.percentile <= 100:
            raise ConfigError("SLO percentile must be in (0, 100]",
                              percentile=self.percentile)
        if self.window_s <= 0:
            raise ConfigError("SLO window_s must be positive",
                              window_s=self.window_s)
        if self.alert_threshold <= 0:
            raise ConfigError("SLO alert_threshold must be positive",
                              alert_threshold=self.alert_threshold)

    def describe(self) -> str:
        return (f"{self.name}: p{self.percentile:g} <= {self.latency_ms:g} ms"
                f" (budget {self.error_budget:.2%})")


class SLOMonitor:
    """Streams request outcomes against one :class:`SLOTarget`."""

    def __init__(self, target: SLOTarget,
                 timeline: Optional[Timeline] = None,
                 quantile_window: int = 2048):
        self.target = target
        self.timeline = timeline if timeline is not None else Timeline(
            bucket_s=min(1.0, target.window_s / 10))
        self.latency = RollingQuantile(window=quantile_window)
        self._lock = threading.Lock()
        self.observed = 0
        self.violations = 0   # latency over target
        self.failures = 0     # failed requests (always violations)
        self.alerts = 0
        self._good_name = f"slo.good[{target.name}]"
        self._bad_name = f"slo.bad[{target.name}]"

    # -- recording -------------------------------------------------------------

    def observe(self, latency_s: float, ok: bool = True,
                ts: Optional[float] = None) -> bool:
        """Record one request outcome; returns True when it violated."""
        violated = (not ok) or latency_s * 1e3 > self.target.latency_ms
        with self._lock:
            self.observed += 1
            if not ok:
                self.failures += 1
            if violated:
                self.violations += 1
        self.latency.observe(latency_s)
        self.timeline.record(self._bad_name if violated else self._good_name,
                             ts=ts)
        if violated and self.burn_rate() >= self.target.alert_threshold:
            with self._lock:
                self.alerts += 1
            _registry.add_counter(f"slo.burn_alerts[{self.target.name}]")
        _registry.set_gauge(f"slo.burn_rate[{self.target.name}]",
                            self.burn_rate())
        return violated

    # -- burn rates ------------------------------------------------------------

    def violation_fraction(self, window_s: Optional[float] = None) -> float:
        """Violating fraction, lifetime or over the trailing window."""
        if window_s is None:
            with self._lock:
                if self.observed == 0:
                    return 0.0
                return self.violations / self.observed
        now = self.timeline.now()
        bad = self.timeline.window_count(self._bad_name, now - window_s, now)
        good = self.timeline.window_count(self._good_name, now - window_s, now)
        total = bad + good
        return bad / total if total else 0.0

    def burn_rate(self, window_s: Optional[float] = None) -> float:
        """Violating fraction divided by the error budget.

        1.0 = consuming the budget exactly as provisioned; 0 = clean;
        e.g. 50x on a 1% budget means half the requests are violating.
        """
        return (self.violation_fraction(window_s)
                / self.target.error_budget)

    def breached(self) -> bool:
        """Is the observed latency quantile over target right now?"""
        if self.latency.count == 0:
            return False
        observed_ms = self.latency.quantile(self.target.percentile) * 1e3
        return observed_ms > self.target.latency_ms

    # -- reporting -------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            observed, violations = self.observed, self.violations
            failures, alerts = self.failures, self.alerts
        quantile_ms = self.latency.quantile(self.target.percentile) * 1e3
        return {
            "name": self.target.name,
            "objective": self.target.describe(),
            "latency_target_ms": self.target.latency_ms,
            "percentile": self.target.percentile,
            "observed": observed,
            "violations": violations,
            "failures": failures,
            "violation_fraction": (violations / observed) if observed else 0.0,
            "error_budget": self.target.error_budget,
            "burn_rate": self.burn_rate(),
            "windowed_burn_rate": self.burn_rate(self.target.window_s),
            "alerts": alerts,
            f"p{self.target.percentile:g}_ms": quantile_ms,
            "breached": self.breached(),
        }

    def render(self) -> str:
        s = self.summary()
        state = "ALERT" if s["alerts"] else ("breach" if s["breached"] else "ok")
        return (f"slo {s['name']:10s}: p{self.target.percentile:g} "
                f"{s[f'p{self.target.percentile:g}_ms']:.2f} ms "
                f"(target {self.target.latency_ms:g} ms)  "
                f"burn-rate {s['burn_rate']:.2f}x "
                f"({s['violations']}/{s['observed']} violations, "
                f"budget {self.target.error_budget:.2%})  [{state}]")


def render_slos(monitors: List[SLOMonitor]) -> str:
    """One report block for a set of monitors."""
    if not monitors:
        return "slo: (no monitors)"
    return "\n".join(monitor.render() for monitor in monitors)
