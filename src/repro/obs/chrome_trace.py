"""Chrome Trace Event Format export (Perfetto / ``chrome://tracing``).

Renders a :class:`~repro.obs.registry.Registry` as the JSON-object form
of the Trace Event Format:

* every span becomes a complete (``"ph": "X"``) event on the **main
  thread** (pid 1 / tid 1) — nesting falls out of the timestamps;
* every recorded pipeline schedule becomes its own process with **one
  track (tid) per fused stage**; each item's busy interval at a stage is
  one complete event, so the fill wavefront and the bottleneck stage are
  visible at a glance. Pipeline time is in cycles, mapped 1 cycle = 1 us;
* counters are emitted as a single counter (``"ph": "C"``) sample so the
  totals appear in the trace viewer alongside the timeline.

Span timestamps are microseconds since the registry epoch. The output of
:func:`chrome_trace` is a plain dict; :func:`write_chrome_trace` dumps it
as JSON ready to load into https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .registry import Registry

#: pid used for the span timeline.
MAIN_PID = 1
#: first pid used for pipeline processes (one per recorded schedule).
PIPELINE_PID_BASE = 2


def _metadata(pid: int, tid: int, kind: str, name: str) -> Dict[str, Any]:
    return {"ph": "M", "pid": pid, "tid": tid, "name": kind,
            "args": {"name": name}}


def chrome_trace(registry: Registry) -> Dict[str, Any]:
    """Render the registry as a Trace Event Format JSON object."""
    events: List[Dict[str, Any]] = [
        _metadata(MAIN_PID, 0, "process_name", "repro"),
        _metadata(MAIN_PID, 1, "thread_name", "main"),
    ]
    for span in registry.spans:
        args: Dict[str, Any] = {"cpu_ms": round(span.cpu_s * 1e3, 3)}
        args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "pid": MAIN_PID,
            "tid": 1,
            "ts": span.start_s * 1e6,
            "dur": span.wall_s * 1e6,
            "args": args,
        })
    if registry.counters:
        last = max((s.end_s for s in registry.spans), default=0.0)
        events.append({
            "name": "counters",
            "cat": "counter",
            "ph": "C",
            "pid": MAIN_PID,
            "tid": 1,
            "ts": last * 1e6,
            "args": dict(registry.counters),
        })
    # Timeline events become per-bucket counter samples so rates (fault
    # bursts, tuner generations) are visible over time, not just as one
    # final total.
    for name in sorted(registry.events.totals()):
        for t, count, total in registry.timeline.series(name):
            events.append({
                "name": name,
                "cat": "timeline",
                "ph": "C",
                "pid": MAIN_PID,
                "tid": 1,
                "ts": t * 1e6,
                "args": {"count": count, "sum": round(total, 6)},
            })
    for index, pipe in enumerate(registry.pipelines):
        pid = PIPELINE_PID_BASE + index
        events.append(_metadata(pid, 0, "process_name", f"pipeline:{pipe.name}"))
        for stage, stage_name in enumerate(pipe.stage_names):
            tid = stage + 1
            events.append(_metadata(pid, tid, "thread_name",
                                    f"stage {stage}: {stage_name}"))
            cycles = pipe.stage_cycles[stage]
            for item, finish_row in enumerate(pipe.stage_finish):
                finish = finish_row[stage]
                events.append({
                    "name": stage_name,
                    "cat": "pipeline",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": float(finish - cycles),
                    "dur": float(cycles),
                    "args": {"item": item, "finish_cycle": finish},
                })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro.obs",
                      "note": "pipeline tracks use 1 cycle = 1 us"},
    }


def write_chrome_trace(path: str, registry: Registry) -> None:
    """Write the registry's Chrome trace JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(registry), handle, indent=1)
        handle.write("\n")
