"""Command-line interface: ``python -m repro <command>`` (or ``fused-cnn``).

Commands map one-to-one to the paper's evaluation artifacts::

    figure2     per-layer feature-map / weight sizes of VGGNet-E
    figure3     the two-layer pyramid walkthrough
    figure7     the storage/transfer design space (alexnet | vgg; --plot)
    table1      AlexNet fused vs baseline accelerator comparison
    table2      VGGNet-E fused vs baseline accelerator comparison
    sec3c       reuse vs recompute strategy comparison
    simulate    run the fused executor and verify against layer-by-layer
    explore     Pareto front for any zoo network or --file description;
                DAG zoo networks (resnet18, resnet50, mobilenetv2,
                yolohead) get branch-aware segment fusion with
                fused-vs-all-boundary baselines
    frontier    exact DP frontier (tractable even for all of VGGNet-E)
    tune        guided autotuning over the joint fusion x tiling space
                (seeded, resumable via --db, parallel via --jobs)
    multi       per-group latency/throughput of a multi-pyramid design
                for an explicit --partition (or a tuned record)
    stats       explore + simulate + pipeline for one network; emit the
                full observability metrics JSON
    faultsim    run fused-vs-reference under an injected fault plan and
                report whether outputs still match the golden reference
    serve-bench batched inference serving benchmark: compiled-plan cache,
                micro-batching scheduler, parallel workers; per-request
                tracing (--trace), latency SLOs (--slo), Prometheus
                exposition (--prom)
    slo         serve a short load against a latency SLO target and
                report the monitor's error-budget burn rate
    bench-diff  compare two benchmark summary JSON files and flag
                metrics that regressed past a threshold
    check       static analysis: verify a network/partition/plan without
                executing, lint the repo's own invariants (--lint),
                analyze lock discipline and races (--concurrency), and
                validate plan-cache/tuning-db/trace files (--plan,
                --tunedb, --trace) and DAG descriptions (--graph)
    hls         emit the specialized HLS C++ for a fused design
    codegen     emit a standalone self-checking C++ program
    bandwidth   roofline sweep, fused vs baseline
    energy      per-image energy breakdown
    verify      run the built-in correctness self-checks
    reproduce   everything above, in order

Every command accepts a global ``--profile[=TRACE_JSON]`` flag (before or
after the subcommand): it enables the :mod:`repro.obs` registry, prints
the run report after the command, and — when a path is given — writes a
Chrome Trace Event Format file loadable in Perfetto. ``--list-networks``
prints the model-zoo keys.

Two more global flags wire up :mod:`repro.faults`: ``--faults SPEC``
installs a fault plan (e.g. ``dram_stall:p=0.05;transfer_corrupt:p=0.02``)
that ``simulate``, ``stats``, and ``faultsim`` inject, and ``--seed N``
seeds the plan's deterministic decision streams. Any diagnosed
:class:`~repro.errors.ReproError` exits with code 2 and a one-line
message instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from . import analysis, faults as faults_mod, obs
from .errors import ReproError
from .hw.device import VIRTEX7_690T
from .nn.stages import extract_levels
from .nn.zoo import alexnet, googlenet_stem, nin_cifar, toynet, vgg16, vggnet_e, zfnet

_NETWORKS = {
    "alexnet": lambda: alexnet(),
    "vgg": lambda: vggnet_e(),
    "vggnet-e": lambda: vggnet_e(),
    "vgg16": lambda: vgg16(),
    "zfnet": lambda: zfnet(),
    "nin": lambda: nin_cifar(),
    "googlenet-stem": lambda: googlenet_stem(),
    "toynet": lambda: toynet(),
}


def _is_graph_network(name: Optional[str]) -> bool:
    """Whether ``name`` is a DAG zoo network (:mod:`repro.graph.zoo`)."""
    if not name:
        return False
    from .graph.zoo import GRAPH_ZOO

    return name.lower() in GRAPH_ZOO


def _graph_network(name: str, input_size: Optional[int] = None):
    """Build a DAG zoo network, honoring ``--input-size`` when given.

    The builders validate the size themselves (each family only accepts
    ``stride * k + offset`` inputs) and raise a diagnosed
    :class:`~repro.graph.ir.GraphError` naming the legal sizes.
    """
    from .graph.zoo import GRAPH_ZOO

    builder, _ = GRAPH_ZOO[name.lower()]
    if input_size is None:
        return builder()
    if input_size <= 0:
        raise SystemExit(f"--input-size must be positive, got {input_size}")
    return builder(input_size)


def _network(name: str, file: Optional[str] = None,
             input_size: Optional[int] = None, graph: bool = False):
    if file is None and _is_graph_network(name):
        if not graph:
            raise SystemExit(
                f"{name!r} is a DAG zoo network; this command only handles "
                "linear networks (DAG networks work with: explore, stats, "
                "serve-bench, check)")
        return _graph_network(name, input_size)
    if input_size is not None:
        if file is None:
            raise SystemExit(
                "--input-size only applies to --file networks and DAG zoo "
                f"networks; linear zoo network {name!r} fixes its own input "
                "size (drop --input-size or pass --file DESCRIPTION)")
        if input_size <= 0:
            raise SystemExit(f"--input-size must be positive, got {input_size}")
    if file is not None:
        from .nn.parse import parse_network

        with open(file) as handle:
            text = handle.read()
        size = input_size or 224
        return parse_network(text, name=name or "parsed", input_size=(size, size))
    try:
        return _NETWORKS[name.lower()]()
    except KeyError:
        from .graph.zoo import GRAPH_ZOO

        known = sorted(_NETWORKS) + sorted(GRAPH_ZOO)
        raise SystemExit(f"unknown network {name!r}; choose from {known}")


def cmd_figure2(args) -> None:
    print(analysis.render_figure2(analysis.figure2_series()))


def cmd_figure3(args) -> None:
    rows = analysis.figure3_walkthrough()
    body = [
        (r.name, r.kind, f"{r.in_tile[0]}x{r.in_tile[1]}",
         f"{r.out_tile[0]}x{r.out_tile[1]}", r.channels_in, r.channels_out,
         r.overlap_points_per_map)
        for r in rows
    ]
    print(analysis.render_table(
        ["level", "kind", "in tile", "out tile", "N", "M", "overlap pts/map"], body))


def cmd_figure7(args) -> None:
    if args.network.lower() in ("alexnet",):
        data = analysis.figure7_data(alexnet())
    else:
        data = analysis.figure7_data(vggnet_e(), num_convs=5)
    if args.plot:
        print(analysis.plot_figure7(data))
        print()
    print(analysis.render_figure7(data, front_only=args.front_only))


def cmd_table1(args) -> None:
    print(analysis.render_comparison(analysis.table1()))


def cmd_table2(args) -> None:
    print(analysis.render_comparison(analysis.table2()))


def cmd_sec3c(args) -> None:
    for rows in analysis.section3c().values():
        print(analysis.render_strategy_rows(rows))
        print()


def cmd_simulate(args) -> None:
    import numpy as np

    from .sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input

    network = _network(args.network)
    sliced = network.prefix(args.convs) if args.convs else network.feature_extractor()
    levels = extract_levels(sliced)
    scale = args.scale
    if scale != 1:
        from .nn.network import Network
        from .nn.shapes import TensorShape

        shape = sliced.input_shape
        sliced = Network(sliced.name,
                         TensorShape(shape.channels, shape.height // scale,
                                     shape.width // scale),
                         sliced.specs)
        levels = extract_levels(sliced)
    x = make_input(levels[0].in_shape, integer=True)
    reference = ReferenceExecutor(levels, integer=True)
    expected = reference.run(x)
    plan = faults_mod.get_active_plan()
    injector = plan.injector() if plan is not None else None
    fused = FusedExecutor(levels, params=reference.params,
                          tip_h=args.tip, tip_w=args.tip, integer=True,
                          faults=injector)
    trace = TrafficTrace()
    got = fused.run(x, trace)
    match = bool(np.array_equal(expected, got))
    print(f"network: {sliced.name} input {levels[0].in_shape}")
    print(f"fused output == layer-by-layer output: {match}")
    print(f"DRAM traffic: {trace.summary()}")
    print(f"reuse-buffer footprint: {fused.buffer_bytes / 1024:.1f} KB")
    if injector is not None:
        counts = ", ".join(f"{k}={v}" for k, v in sorted(injector.counts.items()))
        print(f"fault plan: {plan} (seed {plan.seed}); "
              f"injected: {counts or 'none'}")
    if not match:
        raise SystemExit(1)


_DEFAULT_FAULTSIM_SPEC = "dram_stall:p=0.05;transfer_corrupt:p=0.05"


def cmd_faultsim(args) -> None:
    """Fused executor vs fault-free golden reference under a fault plan.

    The reference runs clean; the fused simulator runs with the plan's
    corruption faults injected (detected and repaired by bounded
    re-fetch), then the optimized design's channel and pipeline models
    replay the same plan to price DRAM stalls, bandwidth degradation,
    and stage stalls in cycles. Exit 1 if the outputs diverge.
    """
    import numpy as np

    from .faults import FaultPlan, RetryPolicy
    from .hw import (fused_design_stages, optimize_fused, simulate_pipeline,
                     simulate_with_channel)
    from .sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input

    plan = faults_mod.get_active_plan()
    if plan is None:
        plan = FaultPlan.parse(_DEFAULT_FAULTSIM_SPEC,
                               seed=getattr(args, "fault_seed", 0))
    retry = RetryPolicy(max_attempts=args.max_attempts)

    network = _network(args.network)
    sliced = _scaled_prefix(network, args.convs, args.scale)
    levels = extract_levels(sliced)
    x = make_input(levels[0].in_shape, integer=True)
    reference = ReferenceExecutor(levels, integer=True)
    expected = reference.run(x)

    injector = plan.injector()
    fused = FusedExecutor(levels, params=reference.params,
                          tip_h=args.tip, tip_w=args.tip, integer=True,
                          faults=injector, retry=retry)
    trace = TrafficTrace()
    got = fused.run(x, trace)
    match = bool(np.array_equal(expected, got))

    design = optimize_fused(extract_levels(network.prefix(args.convs)),
                            dsp_budget=args.dsp)
    clean = simulate_with_channel(fused_design_stages(design),
                                  design.num_pyramids,
                                  words_per_cycle=args.words_per_cycle)
    faulty = simulate_with_channel(fused_design_stages(design),
                                   design.num_pyramids,
                                   words_per_cycle=args.words_per_cycle,
                                   faults=injector, retry=retry)
    schedule = simulate_pipeline(design.stage_timings(), design.num_pyramids,
                                 name=f"{network.name}[:conv{args.convs}]",
                                 faults=injector)

    print(f"fault plan: {plan} (seed {plan.seed})")
    print(f"network: {sliced.name} input {levels[0].in_shape}")
    print(f"fused output == fault-free golden reference: {match}")
    print(f"DRAM traffic: {trace.summary()}")
    print(f"channel makespan: {faulty.makespan:,} cycles "
          f"({faulty.makespan / clean.makespan:.2f}x fault-free; "
          f"{faulty.stalls} stalls, {faulty.retries} retries, "
          f"{faulty.stall_cycles:,} stall cycles)")
    print(f"pipeline makespan under stage stalls: {schedule.makespan:,} cycles")
    counts = ", ".join(f"{k}={v}" for k, v in sorted(injector.counts.items()))
    print(f"injected: {counts or 'none'}")
    if not match:
        raise SystemExit(1)


def cmd_hls(args) -> None:
    from .hw import generate_fused, optimize_fused

    network = _network(args.network)
    levels = extract_levels(network.prefix(args.convs))
    design = optimize_fused(levels, dsp_budget=args.dsp)
    print(generate_fused(design))


def _config_row(config) -> Tuple[int, int, int]:
    """(transfer, storage, fused layers) of one graph configuration."""
    return (config.feature_transfer_bytes, config.extra_storage_bytes,
            config.fused_layer_count)


def _explore_graph(args) -> None:
    """Branch-aware exploration of a DAG zoo network (:mod:`repro.graph`).

    Reports the chosen configuration against two baselines: the same
    per-segment sweeps with every join at a boundary (branch-unaware
    fusion) and the layer-by-layer schedule. The ``fused layers:`` lines
    are the greppable acceptance surface — branch-aware fusion must fuse
    strictly more layers (and move strictly fewer bytes) than the
    all-boundary baseline whenever a join is structurally fusable.
    """
    import json

    from .core import Strategy
    from .graph import explore_graph

    network = _graph_network(args.network, args.input_size)
    strategy = Strategy.RECOMPUTE if args.recompute else Strategy.REUSE
    budget = (None if args.storage_budget is None
              else args.storage_budget * 2 ** 10)
    result = explore_graph(network, strategy=strategy,
                           storage_budget_bytes=budget, jobs=args.jobs)
    program = result.program
    KB, MB = 2 ** 10, 2 ** 20
    shape = network.input_shape
    print(f"{network.name}: input {shape.channels}x{shape.height}x"
          f"{shape.width}, {len(network)} nodes -> "
          f"{len(program.segments)} segments, "
          f"{len(program.boundary_joins)} boundary joins, "
          f"{len(program.opaques)} opaque steps")
    print(f"  chosen: {result.chosen.describe()}")
    rows = [("chosen", result.chosen), ("all-boundary", result.all_boundary),
            ("layer-by-layer", result.layer_by_layer)]
    for label, config in rows:
        transfer, storage, layers = _config_row(config)
        print(f"  {label:14s} {transfer / MB:8.2f} MB  "
              f"{storage / KB:9.1f} KB  fused layers: {layers}  "
              f"(joins fused: {config.fused_join_count})")
    if budget is not None:
        print(f"  (storage budget: {args.storage_budget} KB)")
    if args.json:
        payload = {
            "bench": "graph-explore",
            "network": network.name,
            "input_shape": [shape.channels, shape.height, shape.width],
            "strategy": strategy.name.lower(),
            "segments": len(program.segments),
            "storage_budget_bytes": budget,
        }
        for label, config in rows:
            transfer, storage, layers = _config_row(config)
            payload[label.replace("-", "_")] = {
                "transfer_bytes": transfer,
                "storage_bytes": storage,
                "fused_layers": layers,
                "fused_joins": config.fused_join_count,
                "decisions": [d.to_dict() for d in config.decisions],
            }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote exploration JSON to {args.json}")


def cmd_explore(args) -> None:
    if args.file is None and _is_graph_network(args.network):
        _explore_graph(args)
        return

    from .core import Strategy, explore

    network = _network(args.network, file=args.file, input_size=args.input_size)
    strategy = Strategy.RECOMPUTE if args.recompute else Strategy.REUSE
    budget = None
    if args.max_partitions is not None or args.max_seconds is not None:
        from .faults import ExplorationBudget

        budget = ExplorationBudget(max_evaluations=args.max_partitions,
                                   max_seconds=args.max_seconds)
    result = explore(network, num_convs=args.convs, strategy=strategy,
                     budget=budget, jobs=args.jobs)
    KB, MB = 2 ** 10, 2 ** 20
    degraded = " [degraded: budget hit, best-so-far]" if result.degraded else ""
    print(f"{result.network_name}: {result.num_partitions} partitions, "
          f"{len(result.front)} Pareto-optimal{degraded}")
    for point in result.front:
        cost = (f"{point.extra_storage_bytes / KB:9.1f} KB"
                if strategy is Strategy.REUSE
                else f"{point.extra_ops / 1e6:9.1f} Mops")
        print(f"  {str(point.sizes):24s} {point.feature_transfer_bytes / MB:8.2f} MB  {cost}")
    if args.storage_budget is not None:
        pick = result.best_under_storage(args.storage_budget * KB)
        if pick is None:
            print(f"no partition fits {args.storage_budget} KB")
        else:
            print(f"best under {args.storage_budget} KB: {pick.sizes} -> "
                  f"{pick.feature_transfer_bytes / MB:.2f} MB/image")
    if args.json:
        import json

        payload = {
            "bench": "explore",
            "network": result.network_name,
            "strategy": strategy.name.lower(),
            "num_partitions": result.num_partitions,
            "degraded": result.degraded,
            "front": [{"sizes": list(p.sizes),
                       "transfer_bytes": p.feature_transfer_bytes,
                       "storage_bytes": p.extra_storage_bytes,
                       "extra_ops": p.extra_ops}
                      for p in result.front],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote exploration JSON to {args.json}")


def _parse_sizes(text: str) -> Tuple[int, ...]:
    """Parse a partition spec like ``2+2+1`` (or ``2,2,1``)."""
    parts = [p for p in text.replace("+", ",").split(",") if p.strip()]
    try:
        sizes = tuple(int(p) for p in parts)
    except ValueError:
        raise SystemExit(f"bad partition spec {text!r}: expected e.g. 2+2+1")
    if not sizes or any(s <= 0 for s in sizes):
        raise SystemExit(f"partition sizes must be positive: {text!r}")
    return sizes


def cmd_tune(args) -> None:
    """Guided search over the joint fusion x tiling design space.

    Couples the paper's fusion-partition axis with per-group (Tm, Tn)
    caps, reuse vs recompute, and the pyramid tip, scoring candidates
    with the multi-pyramid hardware simulator under the chosen
    ``--objective``. ``--db`` makes runs resumable: a re-run of the same
    seed and budget replays its trajectory entirely from the database
    (zero fresh evaluations).
    """
    import json

    from .tune import tune

    network = _network(args.network, file=args.file, input_size=args.input_size)
    device_counts = (tuple(int(d) for d in args.device_counts.split(","))
                     if args.device_counts else None)
    result = tune(network, objective=args.objective, strategy=args.strategy,
                  evals=args.evals, seconds=args.seconds,
                  seed=args.fault_seed, jobs=args.jobs, batch=args.batch,
                  num_convs=args.convs, dsp_budget=args.dsp, db=args.db,
                  device_counts=device_counts)

    print(f"{result.network_name}: {result.objective.describe()} over "
          f"{result.space.num_units} fusion units "
          f"(strategy {args.strategy}, seed {args.fault_seed})")
    degraded = " [degraded: wall-clock budget hit]" if result.degraded else ""
    print(f"  considered {result.considered} candidates in "
          f"{result.generations} generations: {result.fresh} fresh, "
          f"{result.cached} cached, {result.pruned} pruned, "
          f"{result.invalid} invalid ({result.elapsed_s:.2f}s){degraded}")
    if args.db and result.fresh == 0:
        print(f"  warm resume: every candidate already in {args.db} "
              f"(0 fresh evaluations)")
    print(f"  baseline  {result.baseline.candidate.key():32s} "
          f"-> {result.baseline.value:,.0f}")
    print(f"  incumbent {result.incumbent.candidate.key():32s} "
          f"-> {result.incumbent.value:,.0f} "
          f"({result.improvement:.2f}x better)")
    metrics = result.incumbent.result.metrics
    print(f"  incumbent metrics: cycles {metrics['cycles']:,.0f}, "
          f"interval {metrics['interval']:,.0f}, "
          f"energy {metrics['energy'] * 1e3:.2f} mJ, "
          f"transfer {metrics['bytes'] / 2**20:.2f} MB, "
          f"DSP {metrics.get('dsp', 0):,.0f}, "
          f"BRAM18 {metrics.get('bram18', 0):,.0f}")
    if "pipe_interval" in metrics and device_counts:
        print(f"  pipeline: {result.incumbent.candidate.devices} device(s), "
              f"interval {metrics['pipe_interval']:,.0f} cycles, "
              f"interval*DSP {metrics['interval_dsp']:,.0f}, "
              f"link {metrics.get('link_bytes', 0):,.0f} B/item, "
              f"{metrics.get('throughput_per_dsp', 0):.6g} items/s/DSP")
    if len(result.pareto) > 1:
        print(f"  pareto archive ({len(result.pareto)} points, "
              f"cycles/energy/bytes):")
        for s in sorted(result.pareto, key=lambda s: s.result.metrics["cycles"]):
            m = s.result.metrics
            print(f"    {s.candidate.key():32s} {m['cycles']:>14,.0f} cyc "
                  f"{m['energy'] * 1e3:8.2f} mJ {m['bytes'] / 2**20:8.2f} MB")
    if args.db:
        print(f"  tuning db: {args.db}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote tuning summary JSON to {args.json}")


def cmd_multi(args) -> None:
    """Per-group breakdown of a multi-pyramid partition design.

    Builds one fused engine per group of ``--partition`` (DSP budget
    split by work) and reports each group's cycles alongside the
    design's latency (sum) and streaming interval (max). With
    ``--tuned DB`` the partition/tiling comes from the database's
    incumbent for this network and ``--objective`` instead.
    """
    network = _network(args.network)
    sliced = (network.prefix(args.convs) if args.convs
              else network.feature_extractor())
    levels = extract_levels(sliced)

    if args.tuned:
        from .hw.device import VIRTEX7_690T as _device
        from .tune import TuningDB, space_key
        from .tune.evaluate import candidate_design

        db = TuningDB.open(args.tuned)
        key = space_key(sliced.fingerprint(), _device.name,
                        args.dsp, args.objective)
        record = db.tuned_record(key, sliced.fingerprint(), args.objective)
        if record is None:
            raise SystemExit(
                f"no tuned incumbent for {sliced.name} "
                f"(objective {args.objective}, dsp {args.dsp}) in {args.tuned}")
        candidate = record.candidate
        design = candidate_design(levels, candidate, device=_device,
                                  dsp_budget=args.dsp)
        print(f"{sliced.name}: tuned partition {candidate.describe()} "
              f"(objective {record.objective}, value {record.value:,.0f})")
    else:
        from .hw.multi import design_partition

        sizes = (_parse_sizes(args.partition) if args.partition
                 else (len(levels),))
        design = design_partition(levels, sizes, dsp_budget=args.dsp,
                                  tip_h=args.tip, tip_w=args.tip)
        print(f"{sliced.name}: partition {design.sizes} "
              f"(DSP budget {args.dsp}, tip {args.tip})")

    interval = design.throughput_interval
    print(f"  {'group':>5s} {'levels':32s} {'cycles':>14s} {'dsp':>6s} "
          f"{'bound':>6s}")
    for i, engine in enumerate(design.engines):
        name = f"{engine.levels[0].name}..{engine.levels[-1].name}"
        bound = "max" if engine.total_cycles == interval else ""
        print(f"  {i:>5d} {name:32s} {engine.total_cycles:>14,} "
              f"{engine.dsp:>6,} {bound:>6s}")
    MB = 2 ** 20
    print(f"  latency (sum of groups):      {design.latency_cycles:>14,} cycles")
    print(f"  throughput interval (max):    {interval:>14,} cycles")
    print(f"  feature-map DRAM transfer:    "
          f"{design.feature_transfer_bytes / MB:>11.2f} MB/image")
    print(f"  total DSP: {design.dsp:,} | BRAM18: "
          f"{design.resources().bram18:,}")


def cmd_pipeline(args) -> None:
    """Stage table of a multi-device pipeline shard of one network.

    Shards the compiled plan's fused groups across ``--devices``
    simulated accelerators (a resource-neutral split of the Virtex-7
    device: each shard gets 1/K of the DSPs and BRAM, its own clock and
    DRAM channel) and prints the per-stage compute/DRAM/link breakdown,
    the steady-state initiation interval, per-stage utilization, and the
    fill/drain verdict of an ``--items``-long micro-batch run.
    """
    import json

    from .dist import simulate_microbatches
    from .hw.device import DEFAULT_DEVICE, split_device
    from .hw.link import LinkSpec
    from .serve import compile_plan

    network = _network(args.network, input_size=args.input_size, graph=True)
    devices = split_device(DEFAULT_DEVICE, args.devices)
    link = LinkSpec(latency_cycles=args.link_latency,
                    bytes_per_cycle=args.link_bandwidth)
    partition = _parse_sizes(args.partition) if args.partition else None
    plan = compile_plan(network, devices=devices, link=link,
                        weight_items=args.weight_items,
                        partition_sizes=partition)
    est = plan.estimate
    utils = est.stage_utilization
    print(plan.describe())
    print(f"  {'stage':>5s} {'device':16s} {'groups':>6s} "
          f"{'compute':>12s} {'dram':>12s} {'link':>10s} {'cost':>12s} "
          f"{'util':>6s}")
    for s, util in zip(est.stages, utils):
        groups = (f"{s.atom_start}" if s.atom_count == 1
                  else f"{s.atom_start}-{s.atom_start + s.atom_count - 1}")
        bound = " max" if s.cost == est.interval_cycles else ""
        print(f"  {s.index:>5d} {s.device.name:16s} {groups:>6s} "
              f"{s.compute_cycles:>12,} {s.dram_cycles:>12,} "
              f"{s.link_cycles:>10,} {s.cost:>12,} {util:>6.2f}{bound}")
    run = simulate_microbatches([s.stage_cycles for s in est.stages],
                                [s.link_cycles for s in est.stages],
                                num_items=args.items)
    print(f"  steady interval:  {est.interval_cycles:>14,} cycles "
          f"({est.items_per_s:,.1f} items/s)")
    print(f"  per-item latency: {est.latency_cycles:>14,} cycles")
    print(f"  link traffic:     {est.link_bytes:>14,} B/item")
    print(f"  fill/drain over {args.items} items: "
          f"{run.fill_drain_cycles:,} cycles "
          f"(bottleneck stage {run.bottleneck_stage})")
    print(f"  throughput/DSP:   {est.throughput_per_dsp:.6g} items/s/DSP "
          f"({est.total_dsp:,} DSPs total)")
    if args.json:
        summary = {"bench": "pipeline", "network": network.name,
                   "devices": args.devices,
                   "key": str(plan.key),
                   "estimate": est.to_dict(),
                   "stage_utilization": list(utils),
                   "run": run.to_dict()}
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote pipeline summary JSON to {args.json}")


def cmd_serve_bench(args) -> None:
    """Benchmark the :mod:`repro.serve` subsystem on one network.

    Compiles (or loads from ``--cache``) a plan, then pushes
    ``--requests`` inputs through the micro-batching scheduler and
    worker pool, reporting throughput, latency percentiles, and
    plan-cache hits. ``--check`` verifies every served output
    bit-identical to a direct :class:`NetworkExecutor` run (including
    under a global ``--faults`` plan). ``--fail-on-overload`` turns the
    first admission rejection into exit code 2.

    Observability flags: ``--trace PATH`` records a span tree per
    request and writes it out (Chrome trace by default, JSONL when the
    path ends in ``.jsonl``; validate with ``repro check --trace``),
    ``--slo MS`` attaches a p99 latency SLO whose burn rate lands in
    the stats report, and ``--prom PATH`` writes a Prometheus text
    exposition snapshot (``-`` for stdout).
    """
    import json
    import os
    import time as _time

    import numpy as np

    from .core import Strategy
    from .faults import RetryPolicy
    from .serve import InferenceService, PlanCache, ServeOverloadError
    from .sim import NetworkExecutor

    network = _network(args.network, input_size=args.input_size, graph=True)
    shape = network.input_shape
    rng = np.random.default_rng(args.fault_seed)
    dims = (shape.channels, shape.height, shape.width)
    xs = [np.round(rng.uniform(-4.0, 4.0, size=dims))
          for _ in range(args.requests)]

    cache = PlanCache()
    loaded = 0
    if args.cache and os.path.exists(args.cache):
        loaded = cache.load(args.cache)

    plan = faults_mod.get_active_plan()
    injector = plan.injector() if plan is not None else None
    storage = (None if args.storage_budget is None
               else args.storage_budget * 2 ** 10)
    strategy = Strategy.RECOMPUTE if args.recompute else Strategy.REUSE
    devices = None
    if args.devices:
        from .hw.device import DEFAULT_DEVICE, split_device

        devices = split_device(DEFAULT_DEVICE, args.devices)
    partition = _parse_sizes(args.partition) if args.partition else None
    svc = InferenceService(
        network, workers=args.workers, mode=args.mode,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue, strategy=strategy, tip=args.tip,
        storage_budget_bytes=storage, precision=args.precision,
        seed=args.fault_seed, faults=injector,
        retry=RetryPolicy(max_attempts=args.max_attempts), cache=cache,
        trace=args.trace is not None, slo=args.slo,
        devices=devices, partition_sizes=partition)
    if devices:
        print(svc.plan().describe())

    futures = []
    admitted = []
    interval = 1.0 / args.rate if args.rate else 0.0
    try:
        svc.start()
        for x in xs:
            try:
                futures.append(svc.submit(x))
                admitted.append(x)
            except ServeOverloadError:
                if args.fail_on_overload:
                    raise
            if interval:
                _time.sleep(interval)
        outs = [f.result(timeout=120) for f in futures]
    finally:
        svc.shutdown()

    print(f"serve-bench: {network.name}, {args.requests} requests, "
          f"{args.workers} workers ({args.mode}), max_batch {args.max_batch}")
    if args.cache:
        print(f"plan cache file: {args.cache} ({loaded} plans loaded)")
    print(svc.report())

    if args.check:
        if getattr(network, "plan_family", "linear") == "graph":
            from .graph import GraphExecutor

            direct = GraphExecutor(network, seed=args.fault_seed,
                                   integer=args.precision == "int")
            reference, label = direct.run_reference, "GraphExecutor.run_reference"
        else:
            direct = NetworkExecutor(network, seed=args.fault_seed,
                                     integer=args.precision == "int")
            reference, label = direct.run, "NetworkExecutor.run"
        mismatches = sum(
            0 if np.array_equal(out, reference(x)) else 1
            for x, out in zip(admitted, outs))
        print(f"served outputs == direct {label}: "
              f"{mismatches == 0} ({len(futures)} checked)")
        if mismatches:
            raise SystemExit(1)

    if args.cache:
        cache.save(args.cache)
    if args.trace is not None:
        if args.trace.endswith(".jsonl"):
            count = svc.tracer.to_jsonl(args.trace)
            print(f"wrote {count} trace spans (JSONL) to {args.trace}")
        else:
            svc.tracer.write_chrome_trace(args.trace)
            print(f"wrote request trace (Chrome Trace Format) to "
                  f"{args.trace}")
    if args.prom is not None:
        from .obs import write_prometheus

        counts = svc.stats.summary()
        write_prometheus(
            args.prom,
            registry=obs.get_registry() if obs.enabled() else None,
            slos=svc.stats.slos,
            extra={f"serve.{key}": float(counts[key])
                   for key in ("submitted", "completed", "failed",
                               "rejected")})
        if args.prom != "-":
            print(f"wrote Prometheus exposition to {args.prom}")
    if args.json:
        summary = {"bench": "serve", "network": network.name,
                   "workers": args.workers, "max_batch": args.max_batch,
                   "mode": args.mode, **svc.stats.summary(),
                   "plan_cache": cache.stats_dict()}
        if devices:
            est = svc.plan().estimate
            summary["pipeline"] = {
                "devices": args.devices,
                "interval_cycles": est.interval_cycles,
                "link_bytes": est.link_bytes,
                "throughput_per_dsp": est.throughput_per_dsp,
            }
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote summary JSON to {args.json}")


def cmd_slo(args) -> None:
    """Serve a short load against a latency SLO and report its burn rate.

    Drives ``--requests`` seeded inputs through an
    :class:`InferenceService` carrying one
    :class:`~repro.obs.slo.SLOTarget` and prints the monitor report —
    the ``burn-rate ...x`` line CI greps — plus the serving stats. A
    global ``--faults`` plan (e.g. ``dram_stall:p=0.2``) injects the
    latency bursts the monitor is there to catch; ``--fail-on-breach``
    exits 1 when the error budget is exhausted.
    """
    import json

    import numpy as np

    from .obs.slo import SLOTarget
    from .serve import InferenceService

    target = SLOTarget(latency_ms=args.target_ms,
                       percentile=args.percentile,
                       error_budget=args.budget,
                       window_s=args.window,
                       alert_threshold=args.alert_threshold)
    plan = faults_mod.get_active_plan()
    injector = plan.injector() if plan is not None else None
    network = _network(args.network)
    shape = network.input_shape
    rng = np.random.default_rng(args.fault_seed)
    dims = (shape.channels, shape.height, shape.width)
    xs = [np.round(rng.uniform(-4.0, 4.0, size=dims))
          for _ in range(args.requests)]

    svc = InferenceService(network, workers=args.workers,
                           max_batch=args.max_batch,
                           max_wait_ms=args.max_wait_ms,
                           seed=args.fault_seed, faults=injector,
                           trace=args.trace is not None, slo=target)
    with svc:
        for future in [svc.submit(x) for x in xs]:
            future.result(timeout=120)

    monitor = svc.stats.slos[0]
    print(f"slo: {network.name}, {args.requests} requests, "
          f"{target.describe()}")
    if plan is not None:
        print(f"fault plan: {plan} (seed {plan.seed})")
    print(monitor.render())
    print()
    print(svc.stats.render())
    if args.trace is not None:
        svc.tracer.write_chrome_trace(args.trace)
        print(f"wrote request trace to {args.trace}")
    if args.json:
        payload = {"network": network.name, "requests": args.requests,
                   "faults": None if plan is None else str(plan),
                   **monitor.summary()}
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote SLO summary JSON to {args.json}")
    if args.fail_on_breach and monitor.breached():
        raise SystemExit(1)


def cmd_serve_soak(args) -> None:
    """Deterministic overload soak: load shedding + autoscaling + faults.

    Drives an open-loop arrival trace (``--trace-kind poisson | diurnal
    | burst``) through the real admission/batching/autoscaling control
    plane on a virtual clock — 100k requests in seconds, byte-identical
    replays per ``--seed``. A global ``--faults`` plan prices injected
    stalls/corruptions into service times; every ``--spot-check-every``th
    completed request executes its compiled plan for real and
    bit-compares against an independent reference (the ``wrong
    answers: 0`` line CI greps). ``--json`` writes the report for
    ``repro check --soak`` and ``bench-diff``.
    """
    import os

    from .serve import AutoscalePolicy, PlanCache, run_soak

    names = [name.strip() for name in args.networks.split(",") if name.strip()]
    networks = [_network(name) for name in names]
    plan = faults_mod.get_active_plan()
    injector = plan.injector() if plan is not None else None

    cache = PlanCache()
    loaded = 0
    if args.cache and os.path.exists(args.cache):
        loaded = cache.load(args.cache)

    trace_kwargs = {}
    if args.trace_kind == "burst":
        trace_kwargs = {"burst_every_s": args.burst_every,
                        "burst_len_s": args.burst_len,
                        "burst_factor": args.burst_factor}
    report = run_soak(
        networks, args.requests, trace=args.trace_kind, rate_rps=args.rate,
        seed=args.fault_seed, guaranteed_fraction=args.guaranteed,
        faults=injector, max_batch=args.max_batch, max_queue=args.max_queue,
        shed_depth_fraction=args.shed_fraction, deadline_ms=args.deadline_ms,
        autoscale=AutoscalePolicy(min_workers=args.min_workers,
                                  max_workers=args.max_workers),
        mean_service_ms=args.mean_service_ms,
        spot_check_every=args.spot_check_every, cache=cache,
        trace_kwargs=trace_kwargs)

    print(f"serve-soak: {', '.join(names)}, {args.requests} requests, "
          f"{args.trace_kind} trace at {args.rate:g} req/s, seed "
          f"{args.fault_seed}")
    if plan is not None:
        print(f"fault plan: {plan} (seed {plan.seed})")
    if args.cache:
        print(f"plan cache file: {args.cache} ({loaded} plans loaded)")
    print(report.render())

    if args.cache:
        cache.save(args.cache)
    if args.json:
        report.save(args.json)
        print(f"wrote soak report JSON to {args.json}")
    if args.check:
        from .check import CheckReport, check_soak_report_dict

        check = CheckReport()
        check.extend("soak report", check_soak_report_dict(report.to_dict()))
        print(check.render(verbose=False))
        if not check.ok():
            raise SystemExit(2)


def cmd_bench_diff(args) -> None:
    """Compare two benchmark summary JSON files and flag regressions.

    Pairs every numeric leaf of ``baseline`` and ``current`` by dotted
    path, classifies deltas with a metric-name direction heuristic
    (latencies should fall, throughputs should rise), and lists any
    that moved the bad way by more than ``--threshold``.
    ``--fail-on-regression`` turns a non-empty regression list into
    exit code 1; metrics present in only one file never fail the diff.
    """
    import json

    from .obs import diff_benchmarks, render_diff

    diff = diff_benchmarks(args.baseline, args.current,
                           threshold=args.threshold)
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_diff(diff, verbose=args.verbose))
    if args.fail_on_regression and diff.regressions:
        raise SystemExit(1)


def cmd_codegen(args) -> None:
    from .hw.codegen import generate_standalone

    network = _network(args.network, file=args.file, input_size=args.input_size)
    sliced = network.prefix(args.convs) if args.convs else network.feature_extractor()
    levels = extract_levels(sliced)
    try:
        code = generate_standalone(levels, tip_h=args.tip, tip_w=args.tip)
    except ValueError as err:
        raise SystemExit(f"codegen: {err} (try --convs to shrink the group)")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(code)
        print(f"wrote {len(code.splitlines())} lines to {args.out}; "
              f"build: g++ -O2 -std=c++17 -o fused_check {args.out}")
    else:
        print(code)


def cmd_bandwidth(args) -> None:
    from .hw import bandwidth_sweep, optimize_baseline, optimize_fused

    levels = extract_levels(_network(args.network).prefix(args.convs))
    fused = optimize_fused(levels, dsp_budget=args.dsp)
    baseline = optimize_baseline(levels, dsp_budget=args.dsp)
    points = bandwidth_sweep(
        fused.total_cycles, fused.feature_transfer_bytes,
        baseline.total_cycles, baseline.feature_transfer_bytes,
        bandwidths=[0.5, 1, 2, 4, 8, 16, 32, 64, 128],
    )
    print(f"{'bytes/cycle':>12s} {'fused kcyc':>12s} {'baseline kcyc':>14s} {'speedup':>8s}")
    for p in points:
        print(f"{p.bytes_per_cycle:12.1f} {p.fused_cycles / 1e3:12.0f} "
              f"{p.baseline_cycles / 1e3:14.0f} {p.speedup:7.2f}x")


def cmd_energy(args) -> None:
    from .core.costs import one_pass_ops
    from .hw import estimate_energy, optimize_baseline, optimize_fused

    levels = extract_levels(_network(args.network).prefix(args.convs))
    fused = optimize_fused(levels, dsp_budget=args.dsp)
    baseline = optimize_baseline(levels, dsp_budget=args.dsp)
    ops = one_pass_ops(levels)
    print(f"{'design':>10s} {'DRAM mJ':>9s} {'SRAM mJ':>9s} {'compute mJ':>11s} {'total mJ':>9s}")
    for name, transfer in (("fused", fused.feature_transfer_bytes),
                           ("baseline", baseline.feature_transfer_bytes)):
        e = estimate_energy(name, transfer, ops)
        print(f"{name:>10s} {e.dram_j * 1e3:9.2f} {e.sram_j * 1e3:9.2f} "
              f"{e.compute_j * 1e3:11.2f} {e.total_j * 1e3:9.2f}")


def cmd_frontier(args) -> None:
    from .core.frontier import pareto_frontier_dp
    from .nn.stages import independent_units

    network = _network(args.network, file=args.file, input_size=args.input_size)
    sliced = network.prefix(args.convs) if args.convs else network.feature_extractor()
    units = independent_units(extract_levels(sliced))
    front = pareto_frontier_dp(units)
    KB, MB = 2 ** 10, 2 ** 20
    print(f"{sliced.name}: exact Pareto front over 2^{len(units) - 1} partitions "
          f"({len(front)} points)")
    for point in front:
        print(f"  {str(point.sizes):40s} {point.transfer_bytes / MB:8.2f} MB "
              f"{point.storage_bytes / KB:9.1f} KB")


def _scaled_prefix(network, convs: int, scale: int):
    """Prefix of ``network`` with input resolution divided by ``scale``.

    Not every extent is legal (AlexNet's K=11/S=4 conv rejects partial
    windows), so search upward from the target for the smallest input
    size whose shapes check out; fall back to full resolution.
    """
    sliced = network.prefix(convs)
    shape = sliced.input_shape
    if scale <= 1 or shape.height != shape.width:
        return sliced
    from .nn.network import Network
    from .nn.shapes import ShapeError, TensorShape

    target = max(shape.height // scale, 1)
    for extent in range(target, shape.height):
        try:
            return Network(sliced.name,
                           TensorShape(shape.channels, extent, extent),
                           sliced.specs)
        except ShapeError:
            continue
    return sliced


def _stats_graph(args) -> None:
    """``stats`` for a DAG zoo network: explore + execute + bit-compare.

    Runs the branch-aware explorer, then executes the chosen
    configuration with :class:`~repro.graph.GraphExecutor` and verifies
    the fused path bit-identical to the node-by-node reference (under
    the global ``--faults`` plan, if any). Defaults to the smallest
    legal input size for the family so the NumPy execution stays fast;
    ``--input-size`` overrides.
    """
    import json

    import numpy as np

    from .core import Strategy
    from .faults import RetryPolicy
    from .graph import GraphExecutor, explore_graph
    from .graph.zoo import GRAPH_ZOO
    from .sim import TrafficTrace

    own_capture = not obs.enabled()
    if own_capture:
        obs.enable()
    registry = obs.get_registry()

    plan = faults_mod.get_active_plan()
    injector = plan.injector() if plan is not None else None
    input_size = args.input_size
    if input_size is None:
        input_size = GRAPH_ZOO[args.network.lower()][1]
    network = _graph_network(args.network, input_size)
    with obs.span("stats", network=network.name):
        result = explore_graph(network, strategy=Strategy.REUSE)
        obs.set_gauge("explore.chosen_transfer_mb",
                      result.chosen.feature_transfer_bytes / 2**20)

        executor = GraphExecutor(
            network, decisions=result.chosen.decisions, seed=args.fault_seed,
            integer=True, faults=injector,
            retry=RetryPolicy(max_attempts=12) if injector else None)
        x = executor.make_input()
        expected = executor.run_reference(x)
        fused_trace = TrafficTrace()
        got = executor.run_fused(x, fused_trace)
        match = bool(np.array_equal(expected, got))
        obs.set_gauge("sim.outputs_match", float(match))

    metrics = registry.to_dict()
    metrics["meta"] = {
        "network": network.name,
        "input_size": input_size,
        "outputs_match": match,
        "segments": len(result.program.segments),
        "fused_layers": result.chosen.fused_layer_count,
        "fused_layers_all_boundary": result.all_boundary.fused_layer_count,
        "fused_joins": result.chosen.fused_join_count,
        "transfer_bytes": result.chosen.feature_transfer_bytes,
        "transfer_bytes_all_boundary":
            result.all_boundary.feature_transfer_bytes,
        "fused_dram": fused_trace.summary(),
        "faults": (None if plan is None else {
            "plan": str(plan),
            "seed": plan.seed,
            "injected": dict(sorted(injector.counts.items())),
        }),
    }
    text = json.dumps(metrics, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
        print(f"{network.name}: {len(result.program.segments)} segments, "
              f"fused layers {result.chosen.fused_layer_count} vs "
              f"{result.all_boundary.fused_layer_count} all-boundary, "
              f"outputs match: {match}")
        print(f"wrote metrics JSON to {args.json}")
    else:
        print(text)
    if own_capture:
        obs.disable()
    if not match:
        raise SystemExit(1)


def cmd_stats(args) -> None:
    """Explore + simulate + pipeline one network, emitting metrics JSON.

    The three hot layers all run instrumented: the partition explorer
    (spans + scored/pruned counters), the fused-vs-reference simulators
    (per-layer DRAM counters mirroring their ``TrafficTrace``), and the
    discrete-event pipeline of the optimized fused design (per-stage
    busy/idle cycles and utilization). DAG zoo networks take the
    explore + execute + bit-compare path of :func:`_stats_graph`.
    """
    if _is_graph_network(args.network):
        _stats_graph(args)
        return

    import json

    import numpy as np

    from .core import Strategy, explore
    from .hw import optimize_fused, simulate_pipeline
    from .sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input

    own_capture = not obs.enabled()
    if own_capture:
        obs.enable()
    registry = obs.get_registry()

    plan = faults_mod.get_active_plan()
    injector = plan.injector() if plan is not None else None
    network = _network(args.network)
    with obs.span("stats", network=network.name):
        result = explore(network, num_convs=args.convs,
                         strategy=Strategy.REUSE)
        obs.set_gauge("explore.front_transfer_mb",
                      result.front[0].feature_transfer_bytes / 2**20)

        sliced = _scaled_prefix(network, args.convs, args.scale)
        levels = extract_levels(sliced)
        x = make_input(levels[0].in_shape, integer=True)
        reference = ReferenceExecutor(levels, integer=True)
        ref_trace = TrafficTrace()
        expected = reference.run(x, ref_trace)
        fused = FusedExecutor(levels, params=reference.params, integer=True,
                              faults=injector)
        fused_trace = TrafficTrace()
        got = fused.run(x, fused_trace)
        match = bool(np.array_equal(expected, got))
        obs.set_gauge("sim.outputs_match", float(match))

        design = optimize_fused(extract_levels(network.prefix(args.convs)),
                                dsp_budget=args.dsp)
        schedule = simulate_pipeline(design.stage_timings(), design.num_pyramids,
                                     name=f"{network.name}[:conv{args.convs}]",
                                     faults=injector)

    metrics = registry.to_dict()
    metrics["meta"] = {
        "network": network.name,
        "convs": args.convs,
        "scale": args.scale,
        "dsp_budget": args.dsp,
        "outputs_match": match,
        "num_partitions": result.num_partitions,
        "pareto_points": len(result.front),
        "fused_dram": fused_trace.summary(),
        "reference_dram": ref_trace.summary(),
        "pipeline_makespan_cycles": schedule.makespan,
        "faults": (None if plan is None else {
            "plan": str(plan),
            "seed": plan.seed,
            "injected": dict(sorted(injector.counts.items())),
        }),
    }
    text = json.dumps(metrics, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
        print(f"{network.name}: {result.num_partitions} partitions explored, "
              f"simulators match: {match}, pipeline makespan "
              f"{schedule.makespan:,} cycles")
        print(f"wrote metrics JSON to {args.json}")
    else:
        print(text)
    if own_capture:
        obs.disable()
    if not match:
        raise SystemExit(1)


def _check_request(report, request_path: str) -> None:
    """Run a check described by a JSON request file (CI fixtures).

    The request names a zoo network plus the same knobs the ``check``
    subcommand takes: ``{"network": ..., "partition": [...], "tip": N,
    "convs": N, "strategy": ..., "dsp": N}``.
    """
    import json

    from .check import check_network

    with open(request_path) as handle:
        spec = json.load(handle)
    network = _network(str(spec.get("network", "toynet")))
    partition = spec.get("partition")
    report.merge(check_network(
        network,
        partition=None if partition is None else [int(s) for s in partition],
        tip=int(spec.get("tip", 1)),
        strategy=str(spec.get("strategy", "reuse")),
        num_convs=spec.get("convs"),
        dsp_budget=spec.get("dsp")))


def _check_graph_file(path: str):
    """Diagnostics for a DAG description file (text form or JSON).

    ``.json`` files are treated as the ``GraphNetwork.to_dict`` form and
    get the exhaustive raw-dictionary checks; anything else is parsed as
    the :mod:`repro.graph.parse` text form, with parse failures surfaced
    as RC705 instead of an exception so they aggregate into the report.
    """
    import json

    from .check import check_graph_dict, check_graph_network, diag
    from .graph import parse_graph
    from .nn.parse import ParseError

    with open(path) as handle:
        text = handle.read()
    if path.endswith(".json"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            return [diag("RC705", f"not valid JSON: {err}", site=path)]
        return check_graph_dict(data, site=path)
    try:
        network = parse_graph(text, name=path)
    except ParseError as err:
        return [diag("RC705", f"graph text does not parse: {err}",
                     site=path)]
    return check_graph_network(network, site=path)


def cmd_check(args) -> None:
    """Static analysis: verify networks/plans/records without executing.

    Aggregates every requested check into one report. Exit code 2 when
    any error is found (or any warning, under ``--strict``); 0 when
    clean — the contract the CI smoke job greps for.
    """
    from .check import (CheckReport, check_concurrency_paths,
                        check_graph_network, check_network,
                        check_plan_cache_file, check_soak_report_file,
                        check_trace_file, check_tuning_db_file, lint_paths)

    report = CheckReport()
    network = None
    if args.network:
        if _is_graph_network(args.network):
            if args.partition:
                raise SystemExit(
                    "--partition does not apply to DAG networks: graph "
                    "plans carry one partition per fusion segment "
                    "(check a plan cache with --plan instead)")
            network = _graph_network(args.network, args.input_size)
            report.extend(f"graph network {network.name}",
                          check_graph_network(network))
        else:
            network = _network(args.network, input_size=args.input_size)
            partition = _parse_sizes(args.partition) if args.partition else None
            report.merge(check_network(
                network, partition=partition, tip=args.tip,
                strategy=args.strategy, num_convs=args.convs,
                dsp_budget=args.dsp))
    if args.graph:
        report.extend(f"graph {args.graph}", _check_graph_file(args.graph))
    if args.request:
        _check_request(report, args.request)
    if args.plan:
        report.extend(f"plan cache {args.plan}",
                      check_plan_cache_file(args.plan, network=network))
    if args.tunedb:
        fingerprint = None
        if network is not None and getattr(network, "plan_family",
                                           "linear") == "linear":
            sliced = (network.prefix(args.convs) if args.convs
                      else network.feature_extractor())
            fingerprint = sliced.fingerprint()
        report.extend(f"tuning db {args.tunedb}",
                      check_tuning_db_file(args.tunedb,
                                           fingerprint=fingerprint))
    if args.trace:
        report.extend(f"trace {args.trace}", check_trace_file(args.trace))
    if args.soak:
        report.extend(f"soak report {args.soak}",
                      check_soak_report_file(args.soak))
    if args.lint:
        report.extend("lint " + " ".join(args.lint),
                      lint_paths(args.lint, readme=args.readme))
    if args.concurrency:
        report.extend("concurrency " + " ".join(args.concurrency),
                      check_concurrency_paths(args.concurrency))
    if not report.checks_run:
        raise SystemExit("nothing to check: give a NETWORK, --graph PATH, "
                         "--lint PATH, --concurrency PATH, --plan "
                         "PATH, --tunedb PATH, --trace PATH, --soak "
                         "PATH, or --request PATH")
    print(report.to_json() if args.json else report.render())
    code = report.exit_code(strict=args.strict)
    if code:
        raise SystemExit(code)


def cmd_verify(args) -> None:
    from .verify import render_results, run_verification

    results = run_verification(scale=args.scale)
    print(render_results(results))
    if any(not r.passed for r in results):
        raise SystemExit(1)


def cmd_reproduce(args) -> None:
    print("=" * 72)
    print("Figure 2: VGGNet-E per-layer data sizes")
    cmd_figure2(args)
    print("=" * 72)
    print("Figure 3: fusion pyramid walkthrough")
    cmd_figure3(args)
    for net in ("alexnet", "vgg"):
        print("=" * 72)
        print(f"Figure 7 ({net}): design space Pareto front")
        data = (analysis.figure7_data(alexnet()) if net == "alexnet"
                else analysis.figure7_data(vggnet_e(), num_convs=5))
        print(analysis.render_figure7(data, front_only=True))
    print("=" * 72)
    print("Section III-C: reuse vs recompute")
    cmd_sec3c(args)
    print("=" * 72)
    cmd_table1(args)
    print("=" * 72)
    cmd_table2(args)
    print("=" * 72)
    print("Extension: exact frontier of all of VGGNet-E (2^20 partitions)")
    from argparse import Namespace

    cmd_frontier(Namespace(network="vgg", file=None, input_size=None, convs=None))
    print("=" * 72)
    print("Bandwidth roofline and energy, Table II designs")
    cmd_bandwidth(Namespace(network="vgg", convs=5, dsp=2880))
    print()
    cmd_energy(Namespace(network="vgg", convs=5, dsp=2880))


class _ListNetworksAction(argparse.Action):
    """``--list-networks``: print the model-zoo keys and exit."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from .graph.zoo import GRAPH_ZOO

        for name in sorted(_NETWORKS):
            print(name)
        for name in sorted(GRAPH_ZOO):
            print(f"{name} (graph)")
        parser.exit()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fused-cnn",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--list-networks", action=_ListNetworksAction,
                        help="print the model-zoo network keys and exit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figure2").set_defaults(func=cmd_figure2)
    sub.add_parser("figure3").set_defaults(func=cmd_figure3)

    p7 = sub.add_parser("figure7")
    p7.add_argument("network", nargs="?", default="vgg")
    p7.add_argument("--front-only", action="store_true")
    p7.add_argument("--plot", action="store_true",
                    help="render an ASCII scatter of the space")
    p7.set_defaults(func=cmd_figure7)

    sub.add_parser("table1").set_defaults(func=cmd_table1)
    sub.add_parser("table2").set_defaults(func=cmd_table2)
    sub.add_parser("sec3c").set_defaults(func=cmd_sec3c)

    sim = sub.add_parser("simulate")
    sim.add_argument("network", nargs="?", default="vgg")
    sim.add_argument("--convs", type=int, default=5)
    sim.add_argument("--scale", type=int, default=4,
                     help="divide input resolution by this factor for speed")
    sim.add_argument("--tip", type=int, default=1)
    sim.set_defaults(func=cmd_simulate)

    hls = sub.add_parser("hls")
    hls.add_argument("network", nargs="?", default="vgg")
    hls.add_argument("--convs", type=int, default=5)
    hls.add_argument("--dsp", type=int, default=2987)
    hls.set_defaults(func=cmd_hls)

    exp = sub.add_parser("explore")
    exp.add_argument("network", nargs="?", default="vgg")
    exp.add_argument("--file", default=None,
                     help="Torch-style description file instead of a zoo net")
    exp.add_argument("--input-size", type=int, default=None)
    exp.add_argument("--convs", type=int, default=None)
    exp.add_argument("--recompute", action="store_true")
    exp.add_argument("--storage-budget", type=int, default=None, metavar="KB")
    exp.add_argument("--max-partitions", type=int, default=None, metavar="N",
                     help="evaluation budget: stop after scoring N partitions "
                          "and return the best-so-far frontier (degraded)")
    exp.add_argument("--max-seconds", type=float, default=None, metavar="S",
                     help="wall-clock budget for the sweep (degrades)")
    exp.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="score partitions across N worker processes "
                          "(1 = serial; ignored when a budget is set)")
    exp.add_argument("--json", default=None, metavar="PATH",
                     help="write the exploration summary JSON here "
                          "(Pareto front; chosen/baseline configs for "
                          "DAG networks)")
    exp.set_defaults(func=cmd_explore)

    sb = sub.add_parser(
        "serve-bench",
        help="batched inference serving benchmark (repro.serve)")
    sb.add_argument("network", nargs="?", default="toynet")
    sb.add_argument("--input-size", type=int, default=None,
                    help="input resolution for DAG zoo networks (each "
                         "family only accepts stride*k+offset sizes)")
    sb.add_argument("--requests", type=int, default=64)
    sb.add_argument("--rate", type=float, default=0.0, metavar="REQ_S",
                    help="arrival rate in requests/s (0 = submit as fast "
                         "as possible)")
    sb.add_argument("--workers", type=int, default=2)
    sb.add_argument("--mode", choices=("thread", "process"), default="thread")
    sb.add_argument("--max-batch", type=int, default=8)
    sb.add_argument("--max-wait-ms", type=float, default=2.0)
    sb.add_argument("--max-queue", type=int, default=1024)
    sb.add_argument("--tip", type=int, default=1)
    sb.add_argument("--recompute", action="store_true")
    sb.add_argument("--storage-budget", type=int, default=None, metavar="KB")
    sb.add_argument("--precision", choices=("int", "float"), default="int")
    sb.add_argument("--max-attempts", type=int, default=4,
                    help="worker retry budget per faulted request")
    sb.add_argument("--cache", default=None, metavar="PATH",
                    help="plan-cache JSON: loaded before the run when it "
                         "exists, saved after")
    sb.add_argument("--check", action="store_true",
                    help="verify every served output bit-identical to a "
                         "direct NetworkExecutor run")
    sb.add_argument("--fail-on-overload", action="store_true",
                    help="exit 2 on the first admission rejection instead "
                         "of dropping the request")
    sb.add_argument("--json", default=None, metavar="PATH",
                    help="write the stats summary JSON here")
    sb.add_argument("--trace", default=None, metavar="PATH",
                    help="trace every request and write the span trees "
                         "here (Chrome trace; .jsonl for JSONL)")
    sb.add_argument("--slo", type=float, default=None, metavar="MS",
                    help="attach a p99 latency SLO with this target "
                         "(milliseconds) and report its burn rate")
    sb.add_argument("--prom", default=None, metavar="PATH",
                    help="write a Prometheus text exposition snapshot "
                         "('-' for stdout)")
    sb.add_argument("--devices", type=int, default=0, metavar="K",
                    help="serve a pipeline plan sharded across K simulated "
                         "devices (a resource-neutral split of the Virtex-7 "
                         "part); 0 serves the unsharded plan")
    sb.add_argument("--partition", default=None, metavar="SIZES",
                    help="explicit fused-group sizes (e.g. 2,3,2) for the "
                         "sharded plan instead of the explored partition")
    sb.set_defaults(func=cmd_serve_bench)

    pl = sub.add_parser(
        "pipeline",
        help="stage table of a plan sharded across simulated devices")
    pl.add_argument("network", nargs="?", default="toynet")
    pl.add_argument("--input-size", type=int, default=None,
                    help="input resolution for DAG zoo networks")
    pl.add_argument("--devices", type=int, default=2, metavar="K",
                    help="number of pipeline devices (resource-neutral "
                         "split of the Virtex-7 part)")
    pl.add_argument("--partition", default=None, metavar="SIZES",
                    help="explicit fused-group sizes (e.g. 1,1,1) instead "
                         "of the explored partition")
    pl.add_argument("--items", type=int, default=32, metavar="N",
                    help="micro-batch items for the fill/drain simulation")
    pl.add_argument("--weight-items", type=int, default=8, metavar="N",
                    dest="weight_items",
                    help="micro-batch run length weights amortize over")
    pl.add_argument("--link-latency", type=int, default=500,
                    dest="link_latency", metavar="CYCLES",
                    help="per-transfer link latency in cycles")
    pl.add_argument("--link-bandwidth", type=float, default=16.0,
                    dest="link_bandwidth", metavar="B_PER_CYCLE",
                    help="sustained link streaming rate in bytes/cycle")
    pl.add_argument("--json", default=None, metavar="PATH",
                    help="write the stage table and estimate JSON here")
    pl.set_defaults(func=cmd_pipeline)

    sl = sub.add_parser(
        "slo",
        help="serve a short load against a latency SLO, report burn rate")
    sl.add_argument("network", nargs="?", default="toynet")
    sl.add_argument("--requests", type=int, default=64)
    sl.add_argument("--target-ms", type=float, default=5.0,
                    dest="target_ms",
                    help="latency target in milliseconds")
    sl.add_argument("--percentile", type=float, default=99.0,
                    help="percentile the target applies to")
    sl.add_argument("--budget", type=float, default=0.01,
                    help="error budget: tolerated violation fraction")
    sl.add_argument("--window", type=float, default=60.0, metavar="S",
                    help="burn-rate observation window in seconds")
    sl.add_argument("--alert-threshold", type=float, default=1.0,
                    dest="alert_threshold",
                    help="burn-rate multiple that trips the alert")
    sl.add_argument("--workers", type=int, default=2)
    sl.add_argument("--max-batch", type=int, default=8)
    sl.add_argument("--max-wait-ms", type=float, default=2.0)
    sl.add_argument("--trace", default=None, metavar="PATH",
                    help="also record request traces and write them here")
    sl.add_argument("--json", default=None, metavar="PATH",
                    help="write the SLO summary JSON here")
    sl.add_argument("--fail-on-breach", action="store_true",
                    help="exit 1 when the error budget is exhausted")
    sl.set_defaults(func=cmd_slo)

    so = sub.add_parser(
        "serve-soak",
        help="deterministic virtual-time overload soak with shedding, "
             "deadlines, autoscaling, and fault spot checks")
    so.add_argument("networks", nargs="?", default="toynet",
                    help="comma-separated zoo networks to serve "
                         "(e.g. toynet,nin)")
    so.add_argument("--requests", type=int, default=100_000)
    so.add_argument("--trace-kind", choices=("poisson", "diurnal", "burst"),
                    default="burst", dest="trace_kind",
                    help="open-loop arrival trace shape")
    so.add_argument("--rate", type=float, default=2000.0, metavar="REQ_S",
                    help="mean arrival rate in requests/s")
    so.add_argument("--guaranteed", type=float, default=0.1,
                    help="fraction of arrivals in the guaranteed class")
    so.add_argument("--max-batch", type=int, default=8)
    so.add_argument("--max-queue", type=int, default=256)
    so.add_argument("--shed-fraction", type=float, default=0.75,
                    dest="shed_fraction",
                    help="sheddable-class depth watermark as a fraction "
                         "of --max-queue")
    so.add_argument("--deadline-ms", type=float, default=25.0,
                    dest="deadline_ms",
                    help="per-request latency budget for deadline batching")
    so.add_argument("--min-workers", type=int, default=1,
                    dest="min_workers")
    so.add_argument("--max-workers", type=int, default=8,
                    dest="max_workers")
    so.add_argument("--mean-service-ms", type=float, default=1.0,
                    dest="mean_service_ms",
                    help="zoo-mean modeled service time per request")
    so.add_argument("--spot-check-every", type=int, default=1000,
                    dest="spot_check_every",
                    help="bit-compare every Nth completed request against "
                         "an independent reference executor (0 = off)")
    so.add_argument("--burst-every", type=float, default=5.0,
                    dest="burst_every", metavar="S")
    so.add_argument("--burst-len", type=float, default=1.0,
                    dest="burst_len", metavar="S")
    so.add_argument("--burst-factor", type=float, default=8.0,
                    dest="burst_factor")
    so.add_argument("--cache", default=None, metavar="PATH",
                    help="plan-cache JSON: loaded before the run when it "
                         "exists, saved after")
    so.add_argument("--json", default=None, metavar="PATH",
                    help="write the soak report JSON here (checkable with "
                         "'repro check --soak')")
    so.add_argument("--check", action="store_true",
                    help="verify the report's RC6xx invariants before exit")
    so.set_defaults(func=cmd_serve_soak)

    bd = sub.add_parser(
        "bench-diff",
        help="compare two benchmark JSON files and flag regressions")
    bd.add_argument("baseline", help="baseline BENCH_*.json (or any "
                                     "--json output)")
    bd.add_argument("current", help="current benchmark JSON to compare")
    bd.add_argument("--threshold", type=float, default=0.10,
                    help="relative change that counts as a regression "
                         "(default 0.10 = 10%%)")
    bd.add_argument("--verbose", action="store_true",
                    help="list every compared metric, not just flagged "
                         "ones")
    bd.add_argument("--json", action="store_true",
                    help="emit the machine-readable diff summary")
    bd.add_argument("--fail-on-regression", action="store_true",
                    help="exit 1 when any metric regressed past the "
                         "threshold")
    bd.set_defaults(func=cmd_bench_diff)

    gen = sub.add_parser("codegen")
    gen.add_argument("network", nargs="?", default="nin")
    gen.add_argument("--file", default=None)
    gen.add_argument("--input-size", type=int, default=None)
    gen.add_argument("--convs", type=int, default=None)
    gen.add_argument("--tip", type=int, default=1)
    gen.add_argument("--out", default=None)
    gen.set_defaults(func=cmd_codegen)

    bw = sub.add_parser("bandwidth")
    bw.add_argument("network", nargs="?", default="vgg")
    bw.add_argument("--convs", type=int, default=5)
    bw.add_argument("--dsp", type=int, default=2880)
    bw.set_defaults(func=cmd_bandwidth)

    en = sub.add_parser("energy")
    en.add_argument("network", nargs="?", default="vgg")
    en.add_argument("--convs", type=int, default=5)
    en.add_argument("--dsp", type=int, default=2880)
    en.set_defaults(func=cmd_energy)

    fr = sub.add_parser("frontier")
    fr.add_argument("network", nargs="?", default="vgg")
    fr.add_argument("--file", default=None)
    fr.add_argument("--input-size", type=int, default=None)
    fr.add_argument("--convs", type=int, default=None)
    fr.set_defaults(func=cmd_frontier)

    tn = sub.add_parser(
        "tune",
        help="guided autotuning over the joint fusion x tiling space")
    tn.add_argument("network", nargs="?", default="vgg")
    tn.add_argument("--file", default=None,
                    help="Torch-style description file instead of a zoo net")
    tn.add_argument("--input-size", type=int, default=None)
    tn.add_argument("--convs", type=int, default=None,
                    help="conv-layer prefix to tune (default: all convs)")
    tn.add_argument("--objective", default="cycles",
                    help="metric to minimize: cycles | interval | energy | "
                         "bytes | pipe_interval | interval_dsp (a.k.a. "
                         "throughput_per_dsp), or a weighted sum like "
                         "cycles=0.7,energy=0.3")
    tn.add_argument("--device-counts", default=None, metavar="K1,K2,...",
                    dest="device_counts",
                    help="open the pipeline devices axis: co-search the "
                         "partition with these fleet sizes (e.g. 1,2,4), "
                         "priced by the repro.dist stage/link model")
    tn.add_argument("--strategy", choices=("random", "evolve"),
                    default="evolve", help="search strategy")
    tn.add_argument("--evals", type=int, default=None, metavar="N",
                    help="candidate budget (default 64 when no --seconds)")
    tn.add_argument("--seconds", type=float, default=None, metavar="S",
                    help="wall-clock budget (degrades to best-so-far)")
    tn.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="evaluate fresh candidates across N processes")
    tn.add_argument("--batch", type=int, default=8, metavar="N",
                    help="candidates proposed per generation")
    tn.add_argument("--dsp", type=int, default=VIRTEX7_690T.dsp_slices)
    tn.add_argument("--db", default=None, metavar="PATH",
                    help="tuning database JSON: loaded before the run when "
                         "it exists, saved after (enables warm resume)")
    tn.add_argument("--json", default=None, metavar="PATH",
                    help="write the tuning summary JSON here")
    tn.set_defaults(func=cmd_tune)

    mu = sub.add_parser(
        "multi",
        help="per-group latency/throughput of a multi-pyramid partition")
    mu.add_argument("network", nargs="?", default="vgg")
    mu.add_argument("--convs", type=int, default=None,
                    help="conv-layer prefix (default: full feature "
                         "extractor, matching tune's default slicing)")
    mu.add_argument("--partition", default=None, metavar="SIZES",
                    help="group sizes like 2+2+1 (default: fully fused)")
    mu.add_argument("--dsp", type=int, default=VIRTEX7_690T.dsp_slices)
    mu.add_argument("--tip", type=int, default=1)
    mu.add_argument("--tuned", default=None, metavar="DB",
                    help="take the partition from this tuning database's "
                         "incumbent instead of --partition")
    mu.add_argument("--objective", default="cycles",
                    help="objective key for the --tuned lookup")
    mu.set_defaults(func=cmd_multi)

    st = sub.add_parser(
        "stats",
        help="explore + simulate + pipeline one network; emit metrics JSON")
    st.add_argument("network", nargs="?", default="vgg")
    st.add_argument("--input-size", type=int, default=None,
                    help="input resolution for DAG zoo networks "
                         "(default: the family's smallest legal size)")
    st.add_argument("--convs", type=int, default=5,
                    help="conv-layer prefix to analyse (paper scope: 5)")
    st.add_argument("--scale", type=int, default=8,
                    help="divide simulator input resolution for speed")
    st.add_argument("--dsp", type=int, default=2880)
    st.add_argument("--json", default=None, metavar="PATH",
                    help="write metrics JSON here instead of stdout")
    st.set_defaults(func=cmd_stats)

    fs = sub.add_parser(
        "faultsim",
        help="fused vs golden reference under an injected fault plan")
    fs.add_argument("network", nargs="?", default="alexnet")
    fs.add_argument("--convs", type=int, default=5)
    fs.add_argument("--scale", type=int, default=4,
                    help="divide simulator input resolution for speed")
    fs.add_argument("--tip", type=int, default=1)
    fs.add_argument("--dsp", type=int, default=2880)
    fs.add_argument("--words-per-cycle", type=float, default=16.0,
                    dest="words_per_cycle")
    fs.add_argument("--max-attempts", type=int, default=4,
                    help="retry budget per faulted transfer")
    fs.set_defaults(func=cmd_faultsim)

    ck = sub.add_parser(
        "check",
        help="static plan/schedule verifier and repo invariant linter")
    ck.add_argument("network", nargs="?", default=None,
                    help="zoo network to verify (dataflow mode without "
                         "--partition, full design mode with it)")
    ck.add_argument("--input-size", type=int, default=None,
                    help="input resolution for DAG zoo networks")
    ck.add_argument("--partition", default=None, metavar="SIZES",
                    help="group sizes like 2+3: verify this concrete "
                         "design's geometry AND resource bounds")
    ck.add_argument("--graph", default=None, metavar="PATH",
                    help="validate a DAG description file (text form, or "
                         "a GraphNetwork JSON dump; RC7xx)")
    ck.add_argument("--convs", type=int, default=None,
                    help="conv-layer prefix (default: feature extractor)")
    ck.add_argument("--tip", type=int, default=1,
                    help="output tile tip (reported as RC102 if oversized)")
    ck.add_argument("--dsp", type=int, default=None,
                    help="DSP budget (default: the device's)")
    ck.add_argument("--strategy", default="reuse",
                    choices=["reuse", "recompute"])
    ck.add_argument("--lint", nargs="+", default=None, metavar="PATH",
                    help="lint these files/directories (repo invariants "
                         "RL101..RL401)")
    ck.add_argument("--concurrency", nargs="+", default=None,
                    metavar="PATH",
                    help="concurrency-lint these files/directories: "
                         "races, lock discipline, lost wakeups "
                         "(RL501..RL505)")
    ck.add_argument("--readme", default=None, metavar="PATH",
                    help="README to cross-check CLI docs against "
                         "(default: nearest README.md above the lint roots)")
    ck.add_argument("--plan", default=None, metavar="PATH",
                    help="validate a plan-cache JSON file (RC4xx)")
    ck.add_argument("--tunedb", default=None, metavar="PATH",
                    help="validate a tuning-db JSON file (RC4xx)")
    ck.add_argument("--trace", default=None, metavar="PATH",
                    help="validate an exported request-trace file "
                         "(JSONL or Chrome trace; RC5xx)")
    ck.add_argument("--soak", default=None, metavar="PATH",
                    help="validate a serve-soak report JSON (RC6xx)")
    ck.add_argument("--request", default=None, metavar="PATH",
                    help="run a check described by a JSON request file")
    ck.add_argument("--strict", action="store_true",
                    help="exit 2 on warnings too, not just errors")
    ck.add_argument("--json", action="store_true",
                    help="emit the machine-readable report for CI")
    ck.set_defaults(func=cmd_check)

    ver = sub.add_parser("verify")
    ver.add_argument("--scale", type=int, default=4)
    ver.set_defaults(func=cmd_verify)

    rep = sub.add_parser("reproduce")
    rep.set_defaults(func=cmd_reproduce)
    return parser


def _extract_profile(argv: List[str]) -> Tuple[Optional[str], List[str]]:
    """Strip the global ``--profile[=PATH]`` flag from anywhere in argv.

    Returns ``(profile, rest)`` where ``profile`` is None (off), ``""``
    (report only), or a path to write the Chrome trace to. Handled before
    argparse so the flag works both before and after the subcommand.
    """
    profile: Optional[str] = None
    rest: List[str] = []
    for arg in argv:
        if arg == "--profile":
            profile = ""
        elif arg.startswith("--profile="):
            profile = arg.split("=", 1)[1]
            if not profile:
                raise SystemExit("--profile= needs a path (or drop the '=')")
        else:
            rest.append(arg)
    return profile, rest


def _extract_faults(argv: List[str]) -> Tuple[Optional[str], int, List[str]]:
    """Strip the global ``--faults SPEC`` / ``--seed N`` flags from argv.

    Like ``--profile``, these are handled before argparse so they work
    position-independently on every subcommand. Returns
    ``(spec, seed, rest)`` where ``spec`` is None when faults are off.
    """
    spec: Optional[str] = None
    seed = 0
    rest: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("--faults", "--seed"):
            if i + 1 >= len(argv):
                raise SystemExit(f"{arg} needs a value")
            value = argv[i + 1]
            i += 2
        elif arg.startswith("--faults=") or arg.startswith("--seed="):
            arg, value = arg.split("=", 1)
            i += 1
        else:
            rest.append(arg)
            i += 1
            continue
        if arg == "--faults":
            if not value:
                raise SystemExit("--faults needs a non-empty spec "
                                 "(e.g. dram_stall:p=0.05)")
            spec = value
        else:
            try:
                seed = int(value)
            except ValueError:
                raise SystemExit(f"--seed expects an integer, got {value!r}")
    return spec, seed, rest


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    profile, argv = _extract_profile(list(argv))
    fault_spec, fault_seed, argv = _extract_faults(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    args.fault_seed = fault_seed
    try:
        plan = (faults_mod.FaultPlan.parse(fault_spec, seed=fault_seed)
                if fault_spec is not None else None)
        with faults_mod.active_plan(plan):
            if profile is None:
                args.func(args)
                return 0
            with obs.capture() as registry:
                args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print()
    print(obs.render_report(registry))
    if profile:
        obs.write_chrome_trace(profile, registry)
        print(f"\nwrote Chrome trace to {profile} "
              "(load in https://ui.perfetto.dev or chrome://tracing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
