"""Tuning objectives: what the autotuner minimizes.

Four scalar metrics come out of every candidate evaluation
(:mod:`repro.tune.evaluate`):

* ``cycles`` — per-image latency of the multi-pyramid design
  (:attr:`~repro.hw.multi.PartitionDesign.latency_cycles`);
* ``interval`` — streaming throughput interval, the slowest group's
  cycles (alias ``throughput``);
* ``energy`` — per-image Joules from :func:`repro.hw.energy
  .estimate_energy` over total DRAM transfer and total arithmetic
  (including recompute overhead);
* ``bytes`` — analytical DRAM feature-map traffic (alias ``transfer``),
  the paper's Figure 7 y-axis.

Two more come from the :mod:`repro.dist` stage/link model when the
candidate carries a ``devices`` axis (both still defined at one device):

* ``pipe_interval`` — the pipeline's steady-state initiation interval,
  the slowest stage's compute+link cycles (alias ``pipeline``);
* ``interval_dsp`` — ``pipe_interval`` times the fleet's total DSP
  count, the resource-time product whose reciprocal is throughput per
  DSP (aliases ``per_dsp``, ``throughput_per_dsp``) — minimizing it
  finds the device count that earns its silicon.

An :class:`Objective` is either a single metric (``"cycles"``) or a
positively weighted sum over baseline-normalized metrics
(``"cycles=0.7,energy=0.3"``); normalization by the layer-by-layer
default-tiled baseline makes the weighted terms commensurable. Both
forms admit a cheap analytical lower bound per candidate (computed in
:func:`repro.tune.evaluate.lower_bounds`), which the search strategies
use to prune candidates that cannot beat the incumbent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..errors import ConfigError

#: The metrics an objective may reference.
METRICS: Tuple[str, ...] = ("cycles", "interval", "energy", "bytes",
                            "pipe_interval", "interval_dsp")

_ALIASES = {"throughput": "interval", "latency": "cycles",
            "transfer": "bytes", "pipeline": "pipe_interval",
            "per_dsp": "interval_dsp", "throughput_per_dsp": "interval_dsp"}


@dataclass(frozen=True)
class Objective:
    """A minimized scalar over candidate metrics."""

    terms: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ConfigError("objective needs at least one term")
        seen = set()
        for metric, weight in self.terms:
            if metric not in METRICS:
                raise ConfigError(f"unknown objective metric {metric!r}",
                                  metrics=METRICS)
            if metric in seen:
                raise ConfigError(f"duplicate objective metric {metric!r}")
            if weight <= 0:
                raise ConfigError(f"objective weight for {metric!r} must be "
                                  f"positive", weight=weight)
            seen.add(metric)

    @classmethod
    def parse(cls, spec: str) -> "Objective":
        """Parse ``"cycles"`` or ``"cycles=0.7,energy=0.3"``."""
        terms = []
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            if "=" in part:
                metric, _, weight_text = part.partition("=")
                try:
                    weight = float(weight_text)
                except ValueError:
                    raise ConfigError(
                        f"bad objective weight {weight_text!r} in {spec!r}")
            else:
                metric, weight = part, 1.0
            metric = metric.strip().lower()
            terms.append((_ALIASES.get(metric, metric), weight))
        return cls(terms=tuple(terms))

    @property
    def is_single(self) -> bool:
        return len(self.terms) == 1

    @property
    def metrics(self) -> Tuple[str, ...]:
        return tuple(metric for metric, _ in self.terms)

    def spec(self) -> str:
        """Canonical spec string (the :class:`TuningDB` key component)."""
        if self.is_single and self.terms[0][1] == 1.0:
            return self.terms[0][0]
        return ",".join(f"{m}={w:g}" for m, w in self.terms)

    def value(self, metrics: Mapping[str, float],
              baseline: Optional[Mapping[str, float]] = None) -> float:
        """The scalar to minimize for one candidate's metrics.

        Single-metric objectives return the raw metric (so ``cycles``
        values are literally simulated cycles); weighted objectives
        normalize each term by the ``baseline`` metrics.
        """
        if self.is_single and self.terms[0][1] == 1.0:
            return float(metrics[self.terms[0][0]])
        if baseline is None:
            raise ConfigError(
                "weighted objectives need baseline metrics for normalization",
                objective=self.spec())
        total = 0.0
        for metric, weight in self.terms:
            ref = float(baseline[metric]) or 1.0
            total += weight * float(metrics[metric]) / ref
        return total

    def describe(self) -> str:
        if self.is_single and self.terms[0][1] == 1.0:
            return f"minimize {self.terms[0][0]}"
        return "minimize " + " + ".join(f"{w:g}*{m}/baseline.{m}"
                                        for m, w in self.terms)
