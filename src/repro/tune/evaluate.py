"""Candidate evaluation: joint-space points priced by the real simulators.

Where the explorer scores partitions with closed-form byte models, the
tuner prices every :class:`~repro.tune.space.Candidate` with the
hardware layer itself:

* the partition's engines are built exactly as :func:`repro.hw.multi
  .design_partition` would — except that groups carrying an explicit
  ``(Tm, Tn)`` tile get those unroll factors directly (clipped to the
  module's channel counts), and only the remaining ``auto`` groups
  share the leftover DSP budget through ``optimize_fused``;
* under the ``recompute`` strategy each conv module's per-pyramid
  latency covers its *full* tile footprint (every pyramid recomputes
  shared values) instead of the steady-state fresh tile, and the BL/BT
  reuse buffers drop out of the BRAM bill — the Section III-C trade
  priced in cycles and block RAMs;
* validity is checked against the space's DSP and BRAM18 budgets via
  :mod:`repro.hw.resources`.

Evaluation is deterministic and side-effect free, so results memoize on
:meth:`Candidate.key` and fan out across processes
(:func:`evaluate_batch`, the same sharding pattern as
``explore(jobs=N)``). :func:`lower_bounds` gives the cheap analytical
floor per metric that bound-based pruning compares against the
incumbent before paying for a full build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.costs import group_transfer
from ..core.fusion import GroupAnalysis, Strategy, analyze_group
from ..core.pyramid import build_pyramid
from ..errors import ConfigError, ReproError
from ..hw.device import (
    DEFAULT_DEVICE,
    DSP_PER_MAC,
    VIRTEX7_690T,
    DeviceSpec,
    FpgaDevice,
    split_device,
)
from ..dist.plan import DEFAULT_WEIGHT_ITEMS
from ..dist.stage import _level_atoms, balance_stages
from ..hw.link import DEFAULT_LINK, LinkSpec
from ..hw.energy import estimate_energy
from ..hw.fused_accel import (
    WORDS_PER_CYCLE,
    FusedDesign,
    ModuleConfig,
    _fresh_tiles,
    module_cycles,
    optimize_fused,
)
from ..hw.multi import GroupEngine, PartitionDesign, PoolEngine
from ..hw.resources import ResourceEstimate
from ..nn.stages import Level
from .space import Candidate, SearchSpace


@dataclass(frozen=True)
class EvalContext:
    """Everything a worker process needs to price one candidate.

    ``pipe_device``/``link``/``weight_items`` parameterize the
    :mod:`repro.dist` stage/link model that prices the ``devices`` axis:
    a ``K``-device candidate runs on ``split_device(pipe_device, K)`` —
    the resource-neutral fleet, so ``interval_dsp`` comparisons across
    device counts are apples to apples.
    """

    levels: Tuple[Level, ...]
    device: FpgaDevice = VIRTEX7_690T
    dsp_budget: int = VIRTEX7_690T.dsp_slices
    bram_budget: int = VIRTEX7_690T.bram18
    pipe_device: DeviceSpec = DEFAULT_DEVICE
    link: LinkSpec = DEFAULT_LINK
    weight_items: int = DEFAULT_WEIGHT_ITEMS

    @classmethod
    def from_space(cls, space: SearchSpace) -> "EvalContext":
        return cls(levels=space.levels, device=space.device,
                   dsp_budget=space.dsp_budget,
                   bram_budget=space.bram18_budget)


@dataclass(frozen=True)
class EvalResult:
    """The priced candidate: metrics when valid, a reason when not."""

    candidate: Candidate
    valid: bool
    metrics: Dict[str, float] = field(default_factory=dict)
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"candidate": self.candidate.to_dict(), "valid": self.valid,
                "metrics": dict(self.metrics), "reason": self.reason}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EvalResult":
        return cls(candidate=Candidate.from_dict(data["candidate"]),
                   valid=bool(data["valid"]),
                   metrics={k: float(v) for k, v in data["metrics"].items()},
                   reason=data.get("reason", ""))


def split_groups(levels: Sequence[Level],
                 sizes: Sequence[int]) -> List[List[Level]]:
    """Slice ``levels`` into the candidate's contiguous groups."""
    if sum(sizes) != len(levels):
        raise ConfigError(f"sizes {tuple(sizes)} do not cover "
                          f"{len(levels)} levels",
                          sizes=tuple(sizes), levels=len(levels))
    groups: List[List[Level]] = []
    start = 0
    for size in sizes:
        groups.append(list(levels[start:start + size]))
        start += size
    return groups


def _group_tip(group: Sequence[Level], tip: int) -> Tuple[int, int]:
    """The candidate tip clipped to the group's output map (the same
    clamp ``design_partition`` applies)."""
    final = group[-1].out_shape
    return min(tip, final.height), min(tip, final.width)


def _explicit_engine(group: Sequence[Level], tile: Tuple[int, int],
                     tip: int, strategy: Strategy,
                     device: FpgaDevice) -> FusedDesign:
    """A fused engine with every conv module capped at (Tm, Tn)."""
    levels = tuple(group)
    tip_h, tip_w = _group_tip(levels, tip)
    geometry = build_pyramid(levels, tip_h, tip_w)
    fresh = _fresh_tiles(levels, geometry)
    tm_cap, tn_cap = tile
    modules: List[ModuleConfig] = []
    for i, level in enumerate(levels):
        if not level.is_conv:
            continue
        g = level.groups
        tm = max(1, min(tm_cap, level.out_channels // g))
        tn = max(1, min(tn_cap, level.in_channels // g))
        if strategy is Strategy.RECOMPUTE:
            fh, fw = geometry.tiles[i].out_h, geometry.tiles[i].out_w
        else:
            fh, fw = fresh[i]
        modules.append(ModuleConfig(level=level, tm=tm, tn=tn,
                                    fresh_h=fh, fresh_w=fw,
                                    cycles=module_cycles(level, tm, tn, fh, fw)))
    return FusedDesign(levels=levels, modules=tuple(modules),
                       tip_h=tip_h, tip_w=tip_w, device=device)


def _recompute_variant(design: FusedDesign) -> FusedDesign:
    """Reprice a reuse-tiled design under the recompute strategy: every
    conv module covers its full tile footprint per pyramid."""
    geometry = design.geometry
    conv_iter = iter(design.modules)
    modules: List[ModuleConfig] = []
    for i, level in enumerate(design.levels):
        if not level.is_conv:
            continue
        m = next(conv_iter)
        fh, fw = geometry.tiles[i].out_h, geometry.tiles[i].out_w
        modules.append(ModuleConfig(level=level, tm=m.tm, tn=m.tn,
                                    fresh_h=fh, fresh_w=fw,
                                    cycles=module_cycles(level, m.tm, m.tn,
                                                         fh, fw)))
    return FusedDesign(levels=design.levels, modules=tuple(modules),
                       tip_h=design.tip_h, tip_w=design.tip_w,
                       device=design.device)


def candidate_design(levels: Sequence[Level], candidate: Candidate,
                     device: FpgaDevice = VIRTEX7_690T,
                     dsp_budget: int = VIRTEX7_690T.dsp_slices) -> PartitionDesign:
    """Build the multi-pyramid hardware for one candidate.

    Explicit-tile groups are instantiated first at face value; the
    remaining conv groups split the leftover DSP budget in proportion to
    their arithmetic, exactly like
    :func:`~repro.hw.multi.design_partition`. Raises
    :class:`~repro.errors.ConfigError` when no feasible design exists
    (the caller records the candidate as invalid).
    """
    strategy = Strategy.RECOMPUTE if candidate.strategy == "recompute" else Strategy.REUSE
    groups = split_groups(levels, candidate.sizes)
    engines: List[Optional[GroupEngine]] = [None] * len(groups)
    auto_indices: List[int] = []
    explicit_dsp = 0
    for gi, (group, tile) in enumerate(zip(groups, candidate.tiles)):
        if not any(level.is_conv for level in group):
            engines[gi] = PoolEngine(levels=tuple(group))
            continue
        if tile is None:
            auto_indices.append(gi)
            continue
        engine = _explicit_engine(group, tile, candidate.tip, strategy, device)
        engines[gi] = engine
        explicit_dsp += engine.dsp

    if auto_indices:
        remaining = dsp_budget - explicit_dsp
        work = [sum(level.total_ops for level in groups[gi]
                    if level.is_conv) for gi in auto_indices]
        total_work = sum(work) or 1
        floors = [400 * sum(1 for level in groups[gi] if level.is_conv)
                  for gi in auto_indices]
        if sum(floors) > remaining:
            raise ConfigError(
                f"DSP budget {dsp_budget} cannot host {len(auto_indices)} "
                f"auto-tiled engines after {explicit_dsp} explicit DSPs",
                dsp_budget=dsp_budget, explicit_dsp=explicit_dsp)
        spare = remaining - sum(floors)
        for gi, floor, group_work in zip(auto_indices, floors, work):
            share = floor + int(spare * group_work / total_work)
            group = groups[gi]
            tip_h, tip_w = _group_tip(group, candidate.tip)
            design = optimize_fused(group, dsp_budget=share, device=device,
                                    tip_h=tip_h, tip_w=tip_w)
            if strategy is Strategy.RECOMPUTE:
                design = _recompute_variant(design)
            engines[gi] = design
    return PartitionDesign(engines=tuple(e for e in engines if e is not None),
                           sizes=candidate.sizes, device=device)


def candidate_resources(design: PartitionDesign,
                        strategy: str) -> ResourceEstimate:
    """The design's BRAM/LUT/FF bill under the candidate's strategy:
    recompute drops the BL/BT reuse buffers (nothing is cached)."""
    est = design.resources()
    if strategy != "recompute":
        return est
    kept = [b for b in est.buffers
            if not b.name.startswith(("BL[", "BT["))]
    return ResourceEstimate(buffers=kept, mac_lanes=est.mac_lanes,
                            extra_dsp=est.extra_dsp,
                            control_complexity=est.control_complexity)


def analyze_candidate(levels: Sequence[Level],
                      candidate: Candidate) -> List[GroupAnalysis]:
    """Closed-form Section III costs per group (tip clipped per group)."""
    strategy = Strategy.RECOMPUTE if candidate.strategy == "recompute" else Strategy.REUSE
    analyses: List[GroupAnalysis] = []
    for group in split_groups(levels, candidate.sizes):
        tip_h, tip_w = _group_tip(group, candidate.tip)
        analyses.append(analyze_group(tuple(group), strategy=strategy,
                                      tip_h=tip_h, tip_w=tip_w))
    return analyses


def _pipeline_metrics(ctx: EvalContext,
                      candidate: Candidate) -> Dict[str, float]:
    """Price the candidate's partition on its device fleet with the
    :mod:`repro.dist` stage/link model.

    Raises :class:`~repro.errors.ConfigError` when the fleet is
    infeasible (fewer groups than devices, or a stage's DSP floor over
    its shard) — the caller decides whether that invalidates the
    candidate (``devices > 1``) or is merely uninformative
    (``devices == 1``, where the classic metrics already apply).
    """
    groups = split_groups(ctx.levels, candidate.sizes)
    names = [f"g{i}" for i in range(len(groups))]
    atoms = _level_atoms(groups, names, "input",
                         ctx.levels[0].in_shape.bytes)
    fleet = split_device(ctx.pipe_device, candidate.devices)
    estimate = balance_stages(atoms, fleet, ctx.link,
                              weight_items=ctx.weight_items)
    interval = estimate.interval_cycles
    utilization = estimate.stage_utilization
    # fill/drain over a standard micro-batch probe (one amortization run)
    from ..dist.pipeline import simulate_microbatches

    run = simulate_microbatches(
        [s.stage_cycles for s in estimate.stages],
        [s.link_cycles for s in estimate.stages],
        num_items=max(ctx.weight_items, 2))
    return {
        "pipe_interval": float(interval),
        "interval_dsp": float(interval) * estimate.total_dsp,
        "link_bytes": float(estimate.link_bytes),
        "pipe_latency": float(estimate.latency_cycles),
        "fill_drain_cycles": float(run.fill_drain_cycles),
        "stage_utilization": float(min(utilization)),
        "throughput_per_dsp": estimate.throughput_per_dsp,
    }


def evaluate_candidate(ctx: EvalContext, candidate: Candidate) -> EvalResult:
    """Price one candidate: analytical costs + simulated hardware cycles.

    Infeasible candidates (no design fits, or the built design exceeds
    the DSP/BRAM budgets) come back ``valid=False`` with the metrics
    that could still be computed — the search treats them as infinitely
    bad but the :class:`TuningDB` remembers them, so a resumed run never
    pays for the same dead end twice.
    """
    analyses = analyze_candidate(ctx.levels, candidate)
    feature_bytes = sum(a.transfer.feature_map_bytes for a in analyses)
    weight_bytes = sum(a.transfer.weight_bytes for a in analyses)
    total_ops = sum(a.baseline_ops + a.extra_ops for a in analyses)
    metrics: Dict[str, float] = {
        "bytes": float(feature_bytes),
        "transfer_total": float(feature_bytes + weight_bytes),
        "extra_storage_bytes": float(sum(a.extra_storage_bytes
                                         for a in analyses)),
        "extra_ops": float(sum(a.extra_ops for a in analyses)),
        "energy": estimate_energy(candidate.key(),
                                  feature_bytes + weight_bytes,
                                  total_ops).total_j,
    }
    try:
        metrics.update(_pipeline_metrics(ctx, candidate))
    except ConfigError as err:
        if candidate.devices > 1:
            # A multi-device candidate that cannot shard is a dead end;
            # single-device candidates fall back to the classic metrics.
            return EvalResult(candidate=candidate, valid=False,
                              metrics=metrics, reason=str(err))
    try:
        design = candidate_design(ctx.levels, candidate,
                                  device=ctx.device,
                                  dsp_budget=ctx.dsp_budget)
    except ReproError as err:
        return EvalResult(candidate=candidate, valid=False,
                          metrics=metrics, reason=str(err))
    resources = candidate_resources(design, candidate.strategy)
    metrics.update({
        "cycles": float(design.latency_cycles),
        "interval": float(design.throughput_interval),
        "dsp": float(design.dsp),
        "bram18": float(resources.bram18),
    })
    if design.dsp > ctx.dsp_budget:
        return EvalResult(candidate=candidate, valid=False, metrics=metrics,
                          reason=f"needs {design.dsp} DSPs, budget "
                                 f"{ctx.dsp_budget}")
    if resources.bram18 > ctx.bram_budget:
        return EvalResult(candidate=candidate, valid=False, metrics=metrics,
                          reason=f"needs {resources.bram18} BRAM18, budget "
                                 f"{ctx.bram_budget}")
    return EvalResult(candidate=candidate, valid=True, metrics=metrics)


def lower_bounds(ctx: EvalContext, candidate: Candidate) -> Dict[str, float]:
    """Cheap analytical floors per metric — no pyramid or design build.

    Valid for every tiling/strategy the candidate could resolve to:
    cycles are bounded below by DRAM streaming (every input read and
    output written at least once at ``WORDS_PER_CYCLE``) and by compute
    (total MACs over the budget's maximum lane count); energy by the
    one-pass arithmetic plus the partition's unavoidable transfer;
    ``bytes`` is exact (the analytical model *is* the metric).
    """
    groups = split_groups(ctx.levels, candidate.sizes)
    max_lanes = max(1, ctx.dsp_budget // DSP_PER_MAC)
    cycles_lb = 0
    interval_lb = 0
    feature_bytes = 0
    weight_bytes = 0
    one_pass = 0
    for group in groups:
        transfer = group_transfer(group)
        feature_bytes += transfer.feature_map_bytes
        weight_bytes += transfer.weight_bytes
        macs = sum(level.total_ops for level in group if level.is_conv) // 2
        group_lb = max(
            ceil(group[0].in_shape.elements / WORDS_PER_CYCLE),
            ceil(group[-1].out_shape.elements / WORDS_PER_CYCLE),
            ceil(macs / max_lanes),
        )
        cycles_lb += group_lb
        interval_lb = max(interval_lb, group_lb)
        one_pass += sum(level.total_ops for level in group)
    energy_lb = estimate_energy("lower-bound",
                                feature_bytes + weight_bytes,
                                one_pass).total_j
    # Pipeline floors: the slowest stage carries at least 1/K of the
    # total arithmetic through a 1/K shard of the pipe device's lanes.
    k = max(1, candidate.devices)
    shard_dsp = ctx.pipe_device.dsp // k
    shard_rate = max(1, 2 * (shard_dsp // DSP_PER_MAC))
    pipe_interval_lb = ceil(one_pass / (k * shard_rate))
    return {"cycles": float(cycles_lb), "interval": float(interval_lb),
            "bytes": float(feature_bytes), "energy": energy_lb,
            "pipe_interval": float(pipe_interval_lb),
            "interval_dsp": float(pipe_interval_lb * k * shard_dsp)}


def _eval_job(args: Tuple[EvalContext, Candidate]) -> EvalResult:
    """Pool target (module-level for picklability)."""
    ctx, candidate = args
    return evaluate_candidate(ctx, candidate)


def evaluate_batch(ctx: EvalContext, candidates: Sequence[Candidate],
                   jobs: int = 1) -> List[EvalResult]:
    """Price a generation, optionally fanned across worker processes.

    Results come back in candidate order regardless of ``jobs``, so a
    parallel tuning run is bit-identical to a serial one (the same
    guarantee ``explore(jobs=N)`` makes).
    """
    if jobs < 1:
        raise ConfigError("jobs must be >= 1", jobs=jobs)
    if jobs == 1 or len(candidates) <= 1:
        return [evaluate_candidate(ctx, c) for c in candidates]
    import concurrent.futures

    work = [(ctx, c) for c in candidates]
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_eval_job, work))
