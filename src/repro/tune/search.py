"""Search strategies: how the next generation of candidates is chosen.

Two strategies sit behind one interface (the tuner calls
:meth:`propose` for a generation of candidates and feeds the scored
results back through :meth:`observe`):

* :class:`RandomSearch` — seeded uniform sampling of the space; the
  honest baseline every guided search must beat.
* :class:`EvolutionarySearch` — an evolutionary/annealing hybrid: a
  first generation seeded from the space's structured anchors (fully
  fused, balanced bisection), a small parent pool, tournament
  selection, the space's mutation
  operators (split/merge a group, bump a ``(Tm, Tn)``, flip strategy,
  resize the tip), a trickle of random immigrants to keep diversity,
  and a simulated-annealing acceptance rule — early generations may
  admit worse parents with probability ``exp(-rel_delta / T)``, and the
  temperature decays each generation so the pool hardens around the
  incumbent.

Both draw randomness only from the ``random.Random`` the tuner passes
in, so a seed pins the full trajectory (the resume-warm contract of the
:class:`~repro.tune.db.TuningDB` depends on this).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Type

from ..errors import ConfigError
from .evaluate import EvalResult
from .space import Candidate, SearchSpace


@dataclass(frozen=True)
class Scored:
    """One observed candidate: its evaluation and scalarized objective."""

    result: EvalResult
    value: float  # inf for invalid candidates

    @property
    def candidate(self) -> Candidate:
        return self.result.candidate


class SearchStrategy:
    """Interface every tuner strategy implements."""

    name = "base"

    def propose(self, rng: random.Random, space: SearchSpace,
                n: int) -> List[Candidate]:
        raise NotImplementedError

    def observe(self, rng: random.Random,
                scored: Sequence[Scored]) -> None:  # pragma: no cover - default
        pass


class RandomSearch(SearchStrategy):
    """Seeded uniform sampling — pure exploration."""

    name = "random"

    def propose(self, rng: random.Random, space: SearchSpace,
                n: int) -> List[Candidate]:
        return [space.random_candidate(rng) for _ in range(n)]


class EvolutionarySearch(SearchStrategy):
    """Mutation-driven search with annealed acceptance."""

    name = "evolve"

    def __init__(self, population: int = 8, immigrants: int = 2,
                 temperature: float = 0.25, decay: float = 0.9):
        if population < 1:
            raise ConfigError("population must be >= 1",
                              population=population)
        if immigrants < 0:
            raise ConfigError("immigrants must be >= 0",
                              immigrants=immigrants)
        if not 0 < decay <= 1:
            raise ConfigError("decay must be in (0, 1]", decay=decay)
        self.population = population
        self.immigrants = immigrants
        self.temperature = temperature
        self.decay = decay
        # (value, insertion index, candidate): the index breaks value
        # ties deterministically, oldest first.
        self._pool: List[Tuple[float, int, Candidate]] = []
        self._inserted = 0
        self._seeded = False

    def _select(self, rng: random.Random) -> Candidate:
        """Binary tournament over the parent pool."""
        a = rng.randrange(len(self._pool))
        b = rng.randrange(len(self._pool))
        return min(self._pool[a], self._pool[b])[2]

    def propose(self, rng: random.Random, space: SearchSpace,
                n: int) -> List[Candidate]:
        if not self._pool and not self._seeded:
            # First generation: the space's structured corners (fully
            # fused, balanced bisection) ahead of random exploration —
            # a random draw proposes the fully-fused pyramid with
            # probability ~2^-(n-1), yet it is the paper's headline
            # configuration and frequently the optimum.
            self._seeded = True
            out = space.anchors()[:n]
            while len(out) < n:
                out.append(space.random_candidate(rng))
            return out
        if not self._pool:
            return [space.random_candidate(rng) for _ in range(n)]
        out: List[Candidate] = []
        for j in range(n):
            if j < min(self.immigrants, n):
                out.append(space.random_candidate(rng))
            else:
                out.append(space.mutate(rng, self._select(rng)))
        return out

    def observe(self, rng: random.Random, scored: Sequence[Scored]) -> None:
        best = min((s[0] for s in self._pool), default=math.inf)
        for item in scored:
            if not math.isfinite(item.value):
                continue
            entry = (item.value, self._inserted, item.candidate)
            self._inserted += 1
            if len(self._pool) < self.population:
                self._pool.append(entry)
                best = min(best, item.value)
                continue
            worst = max(self._pool)
            if item.value < worst[0]:
                self._pool[self._pool.index(worst)] = entry
                best = min(best, item.value)
            elif self.temperature > 0 and best > 0:
                # Annealed acceptance of a worse candidate, scaled by
                # its relative regret against the pool's best.
                rel = (item.value - best) / best
                if rng.random() < math.exp(-rel / self.temperature):
                    self._pool[self._pool.index(worst)] = entry
        self.temperature *= self.decay


STRATEGIES: Dict[str, Type[SearchStrategy]] = {
    RandomSearch.name: RandomSearch,
    EvolutionarySearch.name: EvolutionarySearch,
}


def make_strategy(name: str, **kwargs) -> SearchStrategy:
    """Instantiate a registered strategy by name."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ConfigError(f"unknown search strategy {name!r}",
                          strategies=sorted(STRATEGIES))
    return cls(**kwargs)


def pareto_insert(archive: List[Scored], item: Scored,
                  metrics: Sequence[str] = ("cycles", "energy", "bytes")) -> bool:
    """Maintain a non-dominated archive over ``metrics`` (all minimized).

    Returns True when ``item`` entered the archive (and evicts anything
    it dominates). Invalid candidates never enter.
    """
    if not item.result.valid:
        return False
    point = [item.result.metrics.get(m, math.inf) for m in metrics]
    others = [[s.result.metrics.get(m, math.inf) for m in metrics]
              for s in archive]
    if any(all(o <= p for o, p in zip(other, point)) for other in others):
        return False  # dominated by (or equal to) an archive member
    archive[:] = [s for s, other in zip(archive, others)
                  if not all(p <= o for p, o in zip(point, other))]
    archive.append(item)
    return True
