"""Search-space encoding for the joint fusion x tiling autotuner.

The paper's exploration tool scores only the ``2^(l-1)`` fusion
partitions with closed-form byte models; the hardware layer then picks
per-module ``(Tm, Tn)`` unroll factors separately inside
``optimize_fused``. A :class:`Candidate` couples the two decisions —
plus the reuse-vs-recompute strategy of Section III-C and the pyramid
tip size — into one point of the joint design space:

* ``sizes`` — how the fusion units split into contiguous groups (the
  partition axis the explorer enumerates);
* ``tiles`` — one entry per group: ``None`` lets ``optimize_fused``
  balance the group's modules under its DSP share (the default
  heuristic), or an explicit ``(Tm, Tn)`` cap applied to every conv
  module of the group (clipped to the module's channel counts);
* ``strategy`` — ``"reuse"`` buffers shared intermediates (BL/BT BRAM),
  ``"recompute"`` recomputes them (more cycles, less BRAM);
* ``tip`` — the square pyramid-tip extent (clipped per group to its
  output map);
* ``devices`` — how many pipeline devices the groups shard across
  (``1`` = classic single-accelerator serving; ``K > 1`` prices the
  candidate with the :mod:`repro.dist` stage/link cost model over a
  resource-neutral :func:`~repro.hw.device.split_device` fleet).

:class:`SearchSpace` owns the legal choice sets, validity checks, and
the two seeded generators every search strategy builds on:
:meth:`SearchSpace.random_candidate` and :meth:`SearchSpace.mutate`
(split/merge a group, bump a tile factor, flip strategy, resize the
tip). Both draw only from a caller-provided ``random.Random``, so a
seed fully determines a search trajectory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..hw.device import VIRTEX7_690T, FpgaDevice
from ..nn.network import Network
from ..nn.stages import Level, extract_levels

#: Candidate per-group unroll caps (powers of two, the HLS-friendly set).
TILE_CHOICES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Intermediate-data strategies a candidate may select.
STRATEGY_CHOICES: Tuple[str, ...] = ("reuse", "recompute")

#: Pyramid-tip extents searched by default.
TIP_CHOICES: Tuple[int, ...] = (1, 2, 4)

#: A per-group tiling decision: ``None`` = let ``optimize_fused`` pick.
Tile = Optional[Tuple[int, int]]


@dataclass(frozen=True)
class Candidate:
    """One point of the joint fusion x tiling design space."""

    sizes: Tuple[int, ...]
    tiles: Tuple[Tile, ...]
    strategy: str = "reuse"
    tip: int = 1
    devices: int = 1

    def __post_init__(self) -> None:
        if not self.sizes or any(s <= 0 for s in self.sizes):
            raise ConfigError("candidate group sizes must be positive",
                              sizes=self.sizes)
        if self.devices < 1:
            raise ConfigError("candidate needs at least one device",
                              devices=self.devices)
        if len(self.tiles) != len(self.sizes):
            raise ConfigError("candidate needs one tile entry per group",
                              sizes=self.sizes, tiles=self.tiles)
        if self.strategy not in STRATEGY_CHOICES:
            raise ConfigError(f"unknown strategy {self.strategy!r}",
                              choices=STRATEGY_CHOICES)
        if self.tip < 1:
            raise ConfigError("tip must be >= 1", tip=self.tip)
        for tile in self.tiles:
            if tile is not None and (len(tile) != 2 or tile[0] < 1 or tile[1] < 1):
                raise ConfigError(f"bad tile {tile!r}: need (Tm, Tn) >= (1, 1)",
                                  tiles=self.tiles)

    @property
    def num_units(self) -> int:
        return sum(self.sizes)

    @property
    def num_groups(self) -> int:
        return len(self.sizes)

    def key(self) -> str:
        """Canonical string identity (the memo / :class:`TuningDB` key)."""
        tiles = ",".join("auto" if t is None else f"{t[0]}x{t[1]}"
                         for t in self.tiles)
        sizes = "+".join(str(s) for s in self.sizes)
        key = f"{sizes}|{tiles}|{self.strategy}|tip{self.tip}"
        # Single-device candidates keep their historical key, so every
        # pre-devices tuning database stays a warm cache.
        if self.devices != 1:
            key += f"|d{self.devices}"
        return key

    def describe(self) -> str:
        tiles = ", ".join("auto" if t is None else f"{t[0]}x{t[1]}"
                          for t in self.tiles)
        text = (f"partition {self.sizes} tiles ({tiles}) "
                f"{self.strategy} tip {self.tip}")
        if self.devices != 1:
            text += f" over {self.devices} devices"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {"sizes": list(self.sizes),
                "tiles": [None if t is None else list(t) for t in self.tiles],
                "strategy": self.strategy,
                "tip": self.tip,
                "devices": self.devices}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Candidate":
        return cls(sizes=tuple(int(s) for s in data["sizes"]),
                   tiles=tuple(None if t is None else (int(t[0]), int(t[1]))
                               for t in data["tiles"]),
                   strategy=data.get("strategy", "reuse"),
                   tip=int(data.get("tip", 1)),
                   devices=int(data.get("devices", 1)))


@dataclass(frozen=True)
class SearchSpace:
    """The legal joint design space for one network on one device.

    ``dsp_budget``/``bram_budget`` bound candidate hardware (checked at
    evaluation time via :mod:`repro.hw.resources`); the choice tuples
    bound what the generators may propose. The space is deterministic:
    every random draw comes from the ``random.Random`` the caller
    provides.
    """

    levels: Tuple[Level, ...]
    device: FpgaDevice = VIRTEX7_690T
    dsp_budget: int = VIRTEX7_690T.dsp_slices
    bram_budget: Optional[int] = None  # None -> device.bram18
    tips: Tuple[int, ...] = TIP_CHOICES
    tile_choices: Tuple[int, ...] = TILE_CHOICES
    strategies: Tuple[str, ...] = STRATEGY_CHOICES
    #: Pipeline device counts the search may propose (the ``devices``
    #: axis of the co-search); ``(1,)`` keeps the classic search.
    device_counts: Tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigError("search space needs at least one level")
        if self.dsp_budget < 1:
            raise ConfigError("dsp_budget must be positive",
                              dsp_budget=self.dsp_budget)
        if not self.tips or any(t < 1 for t in self.tips):
            raise ConfigError("tips must be positive", tips=self.tips)
        if not all(s in STRATEGY_CHOICES for s in self.strategies):
            raise ConfigError("unknown strategy in space",
                              strategies=self.strategies)
        if not self.device_counts or any(d < 1 for d in self.device_counts):
            raise ConfigError("device counts must be positive",
                              device_counts=self.device_counts)

    @classmethod
    def from_network(cls, network: Network, num_convs: Optional[int] = None,
                     **kwargs) -> "SearchSpace":
        sliced = (network.prefix(num_convs) if num_convs is not None
                  else network.feature_extractor())
        return cls(levels=tuple(extract_levels(sliced)), **kwargs)

    @property
    def num_units(self) -> int:
        """Fusion units are 1:1 with windowed levels (the Section V-B
        independent-unit convention the explorer also uses)."""
        return len(self.levels)

    @property
    def bram18_budget(self) -> int:
        return self.device.bram18 if self.bram_budget is None else self.bram_budget

    def baseline(self) -> Candidate:
        """The layer-by-layer, default-tiled reference point (point A)."""
        n = self.num_units
        devices = 1 if 1 in self.device_counts else min(self.device_counts)
        return Candidate(sizes=(1,) * n, tiles=(None,) * n,
                         strategy="reuse", tip=1, devices=devices)

    def validate(self, candidate: Candidate) -> Candidate:
        """Structural membership check; returns the candidate or raises."""
        if candidate.num_units != self.num_units:
            raise ConfigError(
                f"candidate covers {candidate.num_units} units, "
                f"space has {self.num_units}",
                sizes=candidate.sizes, units=self.num_units)
        if candidate.strategy not in self.strategies:
            raise ConfigError(f"strategy {candidate.strategy!r} not in space",
                              strategies=self.strategies)
        if candidate.tip not in self.tips:
            raise ConfigError(f"tip {candidate.tip} not in space",
                              tips=self.tips)
        if candidate.devices not in self.device_counts:
            raise ConfigError(
                f"device count {candidate.devices} not in space",
                device_counts=self.device_counts)
        for tile in candidate.tiles:
            if tile is not None and (tile[0] not in self.tile_choices
                                     or tile[1] not in self.tile_choices):
                raise ConfigError(f"tile {tile} not in space",
                                  tile_choices=self.tile_choices)
        return candidate

    def anchors(self) -> List[Candidate]:
        """Deterministic structured corners of the space.

        The fully-fused pyramid (the paper's headline point) and the
        balanced bisection, each at every legal tip — default tiling,
        reuse. Guided strategies seed their first generation with these
        so the search starts from the known-good corners instead of
        relying on a ~2^-(n-1) random draw to propose them. Order is
        fixed (it is part of the seeded trajectory).
        """
        n = self.num_units
        base_devices = (1 if 1 in self.device_counts
                        else min(self.device_counts))
        out: List[Candidate] = []
        shapes = [(n,)]
        if n >= 2:
            shapes.append(((n + 1) // 2, n // 2))
        for sizes in shapes:
            for tip in self.tips:
                cand = Candidate(sizes=sizes, tiles=(None,) * len(sizes),
                                 strategy="reuse", tip=tip,
                                 devices=base_devices)
                if cand not in out:
                    out.append(cand)
        # The device axis's known-good corner: the finest partition on
        # every multi-device fleet (K stages need >= K groups, so the
        # (1,)*n partition is feasible for every legal count).
        for devices in self.device_counts:
            if devices == base_devices or devices > n:
                continue
            out.append(Candidate(sizes=(1,) * n, tiles=(None,) * n,
                                 strategy="reuse", tip=1, devices=devices))
        return out

    # -- seeded generation -----------------------------------------------------

    def _random_tile(self, rng: random.Random) -> Tile:
        # Bias toward the auto heuristic: it is feasible by construction,
        # so the search always keeps a foothold in valid territory.
        if rng.random() < 0.6:
            return None
        return (rng.choice(self.tile_choices), rng.choice(self.tile_choices))

    def random_candidate(self, rng: random.Random) -> Candidate:
        """A uniform partition (each boundary cut with p=0.5) with random
        tile, strategy, and tip draws."""
        n = self.num_units
        sizes = []
        run = 1
        for _ in range(n - 1):
            if rng.random() < 0.5:
                sizes.append(run)
                run = 1
            else:
                run += 1
        sizes.append(run)
        tiles = tuple(self._random_tile(rng) for _ in sizes)
        legal = [d for d in self.device_counts if d <= len(sizes)]
        return Candidate(sizes=tuple(sizes), tiles=tiles,
                         strategy=rng.choice(self.strategies),
                         tip=rng.choice(self.tips),
                         devices=rng.choice(legal or [min(self.device_counts)]))

    def mutate(self, rng: random.Random, candidate: Candidate) -> Candidate:
        """One random structural edit: split/merge a group, retile or
        bump a group's (Tm, Tn), flip the strategy, or resize the tip."""
        ops = ["retile"]
        if any(s > 1 for s in candidate.sizes):
            ops.append("split")
        if candidate.num_groups > 1:
            ops.append("merge")
        if any(t is not None for t in candidate.tiles):
            ops.append("bump")
        if len(self.strategies) > 1:
            ops.append("strategy")
        if len(self.tips) > 1:
            ops.append("tip")
        if len(self.device_counts) > 1:
            ops.append("devices")
        op = rng.choice(ops)
        return getattr(self, f"_mutate_{op}")(rng, candidate)

    def _mutate_split(self, rng: random.Random, c: Candidate) -> Candidate:
        splittable = [i for i, s in enumerate(c.sizes) if s > 1]
        g = rng.choice(splittable)
        cut = rng.randrange(1, c.sizes[g])
        sizes = c.sizes[:g] + (cut, c.sizes[g] - cut) + c.sizes[g + 1:]
        tiles = c.tiles[:g] + (c.tiles[g], c.tiles[g]) + c.tiles[g + 1:]
        return replace(c, sizes=sizes, tiles=tiles)

    def _mutate_merge(self, rng: random.Random, c: Candidate) -> Candidate:
        g = rng.randrange(c.num_groups - 1)
        sizes = c.sizes[:g] + (c.sizes[g] + c.sizes[g + 1],) + c.sizes[g + 2:]
        tiles = c.tiles[:g] + (c.tiles[g],) + c.tiles[g + 2:]
        devices = c.devices
        if devices > len(sizes):
            # a merge can drop below the stage count: fall back to the
            # largest fleet the new partition can still fill
            legal = [d for d in self.device_counts if d <= len(sizes)]
            if legal:
                devices = max(legal)
        return replace(c, sizes=sizes, tiles=tiles, devices=devices)

    def _mutate_retile(self, rng: random.Random, c: Candidate) -> Candidate:
        g = rng.randrange(c.num_groups)
        tiles = list(c.tiles)
        tiles[g] = self._random_tile(rng)
        return replace(c, tiles=tuple(tiles))

    def _mutate_bump(self, rng: random.Random, c: Candidate) -> Candidate:
        tiled = [i for i, t in enumerate(c.tiles) if t is not None]
        g = rng.choice(tiled)
        tm, tn = c.tiles[g]
        axis = rng.randrange(2)
        value = (tm, tn)[axis]
        idx = self.tile_choices.index(value) if value in self.tile_choices else 0
        idx = max(0, min(len(self.tile_choices) - 1,
                         idx + rng.choice((-1, 1))))
        bumped = self.tile_choices[idx]
        tile = (bumped, tn) if axis == 0 else (tm, bumped)
        tiles = list(c.tiles)
        tiles[g] = tile
        return replace(c, tiles=tuple(tiles))

    def _mutate_strategy(self, rng: random.Random, c: Candidate) -> Candidate:
        others = [s for s in self.strategies if s != c.strategy]
        return replace(c, strategy=rng.choice(others))

    def _mutate_tip(self, rng: random.Random, c: Candidate) -> Candidate:
        others = [t for t in self.tips if t != c.tip]
        return replace(c, tip=rng.choice(others))

    def _mutate_devices(self, rng: random.Random, c: Candidate) -> Candidate:
        others = [d for d in self.device_counts
                  if d != c.devices and d <= c.num_groups]
        if not others:
            return self._mutate_retile(rng, c)
        return replace(c, devices=rng.choice(others))

    def describe(self) -> str:
        text = (f"{self.num_units} units, DSP budget {self.dsp_budget}, "
                f"BRAM18 budget {self.bram18_budget}, tips {self.tips}, "
                f"strategies {'/'.join(self.strategies)}, "
                f"tile caps {self.tile_choices}")
        if self.device_counts != (1,):
            text += f", device counts {self.device_counts}"
        return text
