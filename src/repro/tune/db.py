"""The tuning database: every evaluated candidate, persisted as JSON.

A :class:`TuningDB` is a write-through memo for the autotuner. Entries
are keyed on the *tuning space* — network fingerprint, device, DSP
budget, and objective spec — and inside an entry every evaluated
candidate is stored under its canonical :meth:`Candidate.key`, valid or
not. Because a search trajectory is fully determined by its seed, a
re-run of the same (space, seed, budget) replays the exact candidate
sequence and finds every one already priced: the run resumes warm with
**zero fresh evaluations** (the CI ``smoke-tune`` contract).

The file layout is plain JSON, diff-able and stable under
``sort_keys``: two identical runs produce byte-identical databases
(nothing wall-clock-dependent is stored; timings live in the run
summary the CLI emits, not here).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigError
from .evaluate import EvalResult
from .space import Candidate

_VERSION = 1


def space_key(fingerprint: str, device_name: str, dsp_budget: int,
              objective_spec: str,
              device_counts: Tuple[int, ...] = (1,)) -> str:
    """The entry key one tuning space maps to.

    The classic single-device space keeps its historical key (old DBs
    stay warm caches); a space with a ``devices`` axis gets a distinct
    entry so its incumbent never clobbers the classic one.
    """
    key = f"{fingerprint}/{device_name}/dsp{dsp_budget}/{objective_spec}"
    if tuple(device_counts) != (1,):
        key += "/devices" + "-".join(str(d) for d in device_counts)
    return key


@dataclass(frozen=True)
class TunedRecord:
    """The portable outcome of one tuning run: what serving needs.

    ``repro.serve.compile_plan(network, tuned=record)`` freezes this
    partition/tip/strategy into a :class:`~repro.serve.plan.CompiledPlan`
    without any exploration; the fingerprint guards against applying a
    record to the wrong network.
    """

    fingerprint: str
    objective: str
    partition_sizes: Tuple[int, ...]
    tiles: Tuple[Optional[Tuple[int, int]], ...]
    strategy: str
    tip: int
    value: float
    metrics: Dict[str, float]
    devices: int = 1

    @classmethod
    def from_result(cls, fingerprint: str, objective: str, value: float,
                    result: EvalResult) -> "TunedRecord":
        c = result.candidate
        return cls(fingerprint=fingerprint, objective=objective,
                   partition_sizes=c.sizes, tiles=c.tiles,
                   strategy=c.strategy, tip=c.tip, value=value,
                   metrics=dict(result.metrics), devices=c.devices)

    @property
    def candidate(self) -> Candidate:
        return Candidate(sizes=self.partition_sizes, tiles=self.tiles,
                         strategy=self.strategy, tip=self.tip,
                         devices=self.devices)


class TuningDB:
    """JSON-persisted store of evaluated candidates and incumbents."""

    def __init__(self, path: Optional[str] = None):
        self.path = None if path is None else os.fspath(path)
        self.data: Dict[str, Any] = {"version": _VERSION, "entries": {}}
        if self.path and os.path.exists(self.path):
            self._load(self.path)

    @classmethod
    def open(cls, db: "Optional[TuningDB | str]") -> "TuningDB":
        """Coerce ``None`` (ephemeral), a path, or a DB instance."""
        if db is None:
            return cls()
        if isinstance(db, TuningDB):
            return db
        return cls(path=db)

    def _load(self, path: str) -> None:
        with open(path) as handle:
            payload = json.load(handle)
        if (not isinstance(payload, dict) or "entries" not in payload
                or payload.get("version") != _VERSION):
            raise ConfigError("not a tuning-db file", path=str(path))
        self.data = payload

    def save(self, path: Optional[str] = None) -> None:
        """Write the database (no-op for an ephemeral DB without a path)."""
        target = path or self.path
        if target is None:
            return
        with open(target, "w") as handle:
            json.dump(self.data, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # -- entries ---------------------------------------------------------------

    def entry(self, key: str) -> Dict[str, Any]:
        entries = self.data["entries"]
        if key not in entries:
            entries[key] = {"evals": {}, "incumbent": None, "runs": []}
        return entries[key]

    def num_evals(self, key: str) -> int:
        return len(self.entry(key)["evals"])

    def lookup(self, key: str, candidate: Candidate) -> Optional[EvalResult]:
        """A previously priced candidate, or None."""
        record = self.entry(key)["evals"].get(candidate.key())
        if record is None:
            return None
        return EvalResult.from_dict(record)

    def record_eval(self, key: str, result: EvalResult) -> None:
        self.entry(key)["evals"][result.candidate.key()] = result.to_dict()

    def set_incumbent(self, key: str, candidate: Candidate,
                      value: float) -> None:
        self.entry(key)["incumbent"] = {"candidate": candidate.key(),
                                        "value": value}

    def incumbent(self, key: str) -> Optional[Tuple[EvalResult, float]]:
        """The stored best candidate of one space, re-hydrated."""
        entry = self.entry(key)
        marker = entry["incumbent"]
        if marker is None:
            return None
        record = entry["evals"].get(marker["candidate"])
        if record is None:
            return None
        return EvalResult.from_dict(record), float(marker["value"])

    def record_run(self, key: str, summary: Dict[str, Any]) -> None:
        """Append one run's summary (deterministic fields only)."""
        self.entry(key)["runs"].append(dict(summary))

    def runs(self, key: str) -> List[Dict[str, Any]]:
        return list(self.entry(key)["runs"])

    def tuned_record(self, key: str, fingerprint: str,
                     objective_spec: str) -> Optional[TunedRecord]:
        stored = self.incumbent(key)
        if stored is None:
            return None
        result, value = stored
        return TunedRecord.from_result(fingerprint, objective_spec, value,
                                       result)
