"""repro.tune — guided autotuning over the joint fusion x tiling space.

The paper's exploration tool (:mod:`repro.core.explorer`) enumerates
fusion *partitions* and scores them with closed-form byte models; the
hardware layer (:mod:`repro.hw`) then tiles each group with its own
heuristic. This package searches the **joint** space — partition sizes,
per-group ``(Tm, Tn)`` caps, reuse vs recompute, pyramid tip — against
simulated cycles/energy/bytes, under a seeded, resumable, budgeted
loop::

    from repro.nn.zoo import vggnet_e
    from repro.tune import tune

    result = tune(vggnet_e(), num_convs=5, objective="cycles",
                  evals=200, seed=7, jobs=4, db="tunedb.json")
    print(result.incumbent.candidate.describe(), result.improvement)

The incumbent round-trips into serving::

    from repro.serve import compile_plan
    plan = compile_plan(vggnet_e().prefix(5), tuned=result.record)

See ``docs/tuning.md`` for the full design.
"""

from .db import TunedRecord, TuningDB, space_key
from .evaluate import (
    EvalContext,
    EvalResult,
    candidate_design,
    candidate_resources,
    evaluate_batch,
    evaluate_candidate,
    lower_bounds,
)
from .objective import METRICS, Objective
from .search import (
    STRATEGIES,
    EvolutionarySearch,
    RandomSearch,
    Scored,
    SearchStrategy,
    make_strategy,
    pareto_insert,
)
from .space import (
    STRATEGY_CHOICES,
    TILE_CHOICES,
    TIP_CHOICES,
    Candidate,
    SearchSpace,
)
from .tuner import DEFAULT_EVALS, TuningResult, tune

__all__ = [
    "Candidate",
    "DEFAULT_EVALS",
    "EvalContext",
    "EvalResult",
    "EvolutionarySearch",
    "METRICS",
    "Objective",
    "RandomSearch",
    "STRATEGIES",
    "STRATEGY_CHOICES",
    "Scored",
    "SearchSpace",
    "SearchStrategy",
    "TILE_CHOICES",
    "TIP_CHOICES",
    "TunedRecord",
    "TuningDB",
    "TuningResult",
    "candidate_design",
    "candidate_resources",
    "evaluate_batch",
    "evaluate_candidate",
    "lower_bounds",
    "make_strategy",
    "pareto_insert",
    "space_key",
    "tune",
]
