"""The tuning loop: seeded, resumable, budgeted, parallel.

:func:`tune` drives one search over the joint fusion x tiling space:

1. price the layer-by-layer default-tiled **baseline** (the normalizer
   for weighted objectives and the yardstick every report compares
   against);
2. per generation: ask the strategy for a batch of candidates, serve
   memo/:class:`~repro.tune.db.TuningDB` hits for free, **prune**
   candidates whose analytical lower bound already exceeds the
   incumbent, fan the remaining fresh evaluations across processes, and
   feed the scored generation back to the strategy;
3. stop when the :class:`~repro.faults.budget.ExplorationBudget` trips
   (every *considered* candidate is charged — cached, pruned, or fresh —
   so a re-run with the same seed and budget replays the identical
   trajectory and resumes warm from the DB with zero fresh work);
4. persist everything evaluated, the incumbent, and a deterministic run
   summary back to the DB.

Observability: a ``tune`` span wraps the search, one ``tune.generation``
span per batch, and counters ``tune.candidates_evaluated``,
``tune.cached_hits``, ``tune.pruned``, ``tune.invalid``,
``tune.incumbent_updates`` mirror the loop's work.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import obs
from ..errors import ConfigError
from ..faults.budget import ExplorationBudget
from ..hw.device import VIRTEX7_690T, FpgaDevice
from ..nn.network import Network
from .db import TunedRecord, TuningDB, space_key
from .evaluate import (
    EvalContext,
    EvalResult,
    evaluate_batch,
    evaluate_candidate,
    lower_bounds,
)
from .objective import Objective
from .search import Scored, SearchStrategy, make_strategy, pareto_insert
from .space import Candidate, SearchSpace

#: Default evaluation budget when the caller bounds neither evals nor time.
DEFAULT_EVALS = 64


@dataclass
class TuningResult:
    """Everything one :func:`tune` call learned."""

    network_name: str
    fingerprint: str
    objective: Objective
    space: SearchSpace
    incumbent: Scored
    baseline: Scored
    considered: int
    fresh: int
    cached: int
    pruned: int
    invalid: int
    generations: int
    degraded: bool
    elapsed_s: float
    pareto: List[Scored] = field(default_factory=list)
    history: List[Tuple[int, float]] = field(default_factory=list)
    db_path: Optional[str] = None

    @property
    def improvement(self) -> float:
        """baseline / incumbent objective ratio (>1 means better)."""
        if self.incumbent.value == 0:
            return float("inf")
        return self.baseline.value / self.incumbent.value

    @property
    def record(self) -> TunedRecord:
        """The portable serve-ready record of the incumbent."""
        return TunedRecord.from_result(self.fingerprint,
                                       self.objective.spec(),
                                       self.incumbent.value,
                                       self.incumbent.result)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "network": self.network_name,
            "fingerprint": self.fingerprint,
            "objective": self.objective.spec(),
            "space": self.space.describe(),
            "incumbent": {"candidate": self.incumbent.candidate.to_dict(),
                          "key": self.incumbent.candidate.key(),
                          "value": self.incumbent.value,
                          "metrics": dict(self.incumbent.result.metrics)},
            "baseline": {"candidate": self.baseline.candidate.to_dict(),
                         "value": self.baseline.value,
                         "metrics": dict(self.baseline.result.metrics)},
            "improvement": self.improvement,
            "considered": self.considered,
            "fresh_evaluations": self.fresh,
            "cached_evaluations": self.cached,
            "pruned": self.pruned,
            "invalid": self.invalid,
            "generations": self.generations,
            "degraded": self.degraded,
            "elapsed_s": round(self.elapsed_s, 4),
            "pareto": [{"candidate": s.candidate.to_dict(),
                        "value": s.value,
                        "metrics": dict(s.result.metrics)}
                       for s in self.pareto],
            "history": [[n, v] for n, v in self.history],
            "db": self.db_path,
        }


def tune(network: Network, objective: Union[str, Objective] = "cycles",
         strategy: Union[str, SearchStrategy] = "evolve",
         evals: Optional[int] = None, seconds: Optional[float] = None,
         seed: int = 0, jobs: int = 1, batch: int = 8,
         num_convs: Optional[int] = None,
         device: FpgaDevice = VIRTEX7_690T,
         dsp_budget: Optional[int] = None,
         db: Union[TuningDB, str, None] = None,
         space: Optional[SearchSpace] = None,
         prune: bool = True,
         device_counts: Optional[Tuple[int, ...]] = None) -> TuningResult:
    """Search the joint fusion x tiling space of (a prefix of) a network.

    Parameters mirror the ``tune`` CLI subcommand: ``evals``/``seconds``
    bound the search (defaulting to :data:`DEFAULT_EVALS` evaluations
    when neither is given), ``seed`` pins the trajectory, ``jobs`` fans
    fresh evaluations across processes, and ``db`` (a path or
    :class:`TuningDB`) makes the run resumable. ``space`` overrides the
    default :meth:`SearchSpace.from_network` construction (advanced
    callers can narrow the choice sets). ``device_counts`` opens the
    pipeline ``devices`` axis — e.g. ``(1, 2, 4)`` co-searches the
    partition with the fleet size, priced by the :mod:`repro.dist`
    stage/link model (pair with objective ``interval_dsp`` a.k.a.
    ``throughput_per_dsp`` to find the count that earns its silicon).
    """
    if batch < 1:
        raise ConfigError("batch must be >= 1", batch=batch)
    if device_counts is not None and space is not None:
        raise ConfigError(
            "pass device_counts via the explicit space, not both",
            device_counts=device_counts)
    obj = objective if isinstance(objective, Objective) else Objective.parse(objective)
    strat = strategy if isinstance(strategy, SearchStrategy) else make_strategy(strategy)
    sliced = (network.prefix(num_convs) if num_convs is not None
              else network.feature_extractor())
    if space is None:
        budget_dsp = device.dsp_slices if dsp_budget is None else dsp_budget
        kwargs = {}
        if device_counts is not None:
            kwargs["device_counts"] = tuple(sorted(set(device_counts)))
        space = SearchSpace.from_network(sliced, device=device,
                                         dsp_budget=budget_dsp, **kwargs)
    fingerprint = sliced.fingerprint()
    ctx = EvalContext.from_space(space)
    database = TuningDB.open(db)
    key = space_key(fingerprint, space.device.name, space.dsp_budget,
                    obj.spec(), device_counts=space.device_counts)
    if evals is None and seconds is None:
        evals = DEFAULT_EVALS
    budget = ExplorationBudget(max_evaluations=evals, max_seconds=seconds)

    rng = random.Random(seed)
    memo: Dict[str, EvalResult] = {}
    counters = {"fresh": 0, "cached": 0, "pruned": 0, "invalid": 0}

    def fetch(candidate: Candidate) -> Optional[EvalResult]:
        cached = memo.get(candidate.key())
        if cached is not None:
            return cached
        stored = database.lookup(key, candidate)
        if stored is not None:
            memo[candidate.key()] = stored
        return stored

    def score(result: EvalResult) -> Scored:
        if not result.valid or "cycles" not in result.metrics:
            return Scored(result=result, value=float("inf"))
        return Scored(result=result,
                      value=obj.value(result.metrics,
                                      baseline_metrics))

    t0 = time.perf_counter()
    incumbent: Optional[Scored] = None
    pareto: List[Scored] = []
    history: List[Tuple[int, float]] = []
    considered = 0
    generations = 0

    with obs.span("tune", network=sliced.name, objective=obj.spec(),
                  strategy=strat.name, seed=seed) as tune_span:
        # 1. the baseline anchors normalization and the final report.
        baseline_cand = space.validate(space.baseline())
        baseline_result = fetch(baseline_cand)
        if baseline_result is None:
            baseline_result = evaluate_candidate(ctx, baseline_cand)
            memo[baseline_cand.key()] = baseline_result
            database.record_eval(key, baseline_result)
            counters["fresh"] += 1
            obs.add_counter("tune.candidates_evaluated")
        else:
            counters["cached"] += 1
            obs.add_counter("tune.cached_hits")
        baseline_metrics = baseline_result.metrics
        baseline = score(baseline_result)
        budget.charge()
        considered += 1
        if baseline.value != float("inf"):
            incumbent = baseline
            history.append((considered, baseline.value))
            pareto_insert(pareto, baseline)

        # 2. the generational loop.
        while not budget.exceeded():
            n = batch
            remaining = budget.remaining_evaluations()
            if remaining is not None:
                n = min(n, remaining)
            if n <= 0:
                break
            proposals = strat.propose(rng, space, n)
            generations += 1
            with obs.span("tune.generation", gen=generations,
                          proposed=len(proposals)) as gen_span:
                plan: List[Tuple[Candidate, Optional[EvalResult], bool]] = []
                fresh_cands: List[Candidate] = []
                for cand in proposals:
                    cand = space.validate(cand)
                    hit = fetch(cand)
                    if hit is not None:
                        counters["cached"] += 1
                        obs.add_counter("tune.cached_hits")
                        plan.append((cand, hit, False))
                        continue
                    if (prune and incumbent is not None
                            and obj.value(lower_bounds(ctx, cand),
                                          baseline_metrics)
                            >= incumbent.value):
                        counters["pruned"] += 1
                        obs.add_counter("tune.pruned")
                        plan.append((cand, None, True))
                        continue
                    fresh_cands.append(cand)
                    plan.append((cand, None, False))
                fresh_results = iter(evaluate_batch(ctx, fresh_cands,
                                                    jobs=jobs))
                scored_gen: List[Scored] = []
                for cand, hit, was_pruned in plan:
                    budget.charge()
                    considered += 1
                    if was_pruned:
                        continue
                    result = hit
                    if result is None:
                        result = next(fresh_results)
                        memo[cand.key()] = result
                        database.record_eval(key, result)
                        counters["fresh"] += 1
                        obs.add_counter("tune.candidates_evaluated")
                    item = score(result)
                    if item.value == float("inf"):
                        counters["invalid"] += 1
                        obs.add_counter("tune.invalid")
                    scored_gen.append(item)
                    pareto_insert(pareto, item)
                    if incumbent is None or item.value < incumbent.value:
                        incumbent = item
                        history.append((considered, item.value))
                        obs.add_counter("tune.incumbent_updates")
                gen_span.set(fresh=len(fresh_cands),
                             incumbent=(incumbent.value
                                        if incumbent else None))
                # one timeline point per generation: plotting this series
                # shows convergence (value falling) over the search
                if incumbent is not None:
                    obs.emit_event("tune.generation_best", incumbent.value,
                                   attrs={"generation": generations})
                strat.observe(rng, scored_gen)

        if incumbent is None:
            raise ConfigError(
                "no valid candidate found within the budget "
                "(DSP/BRAM budgets may be too tight for this network)",
                network=sliced.name, considered=considered,
                budget=budget.describe())
        tune_span.set(considered=considered, fresh=counters["fresh"],
                      incumbent=incumbent.value)

    elapsed = time.perf_counter() - t0
    degraded = bool(
        budget.tripped and budget.max_seconds is not None
        and (budget.max_evaluations is None
             or budget.evaluations < budget.max_evaluations))
    database.set_incumbent(key, incumbent.candidate, incumbent.value)
    database.record_run(key, {
        "seed": seed, "strategy": strat.name,
        "requested_evals": budget.max_evaluations,
        "considered": considered, "fresh": counters["fresh"],
        "cached": counters["cached"], "pruned": counters["pruned"],
        "invalid": counters["invalid"],
        "incumbent": incumbent.candidate.key(),
        "value": incumbent.value, "degraded": degraded,
    })
    database.save()
    obs.set_gauge("tune.incumbent_value", incumbent.value)
    result = TuningResult(
        network_name=sliced.name, fingerprint=fingerprint, objective=obj,
        space=space, incumbent=incumbent, baseline=baseline,
        considered=considered, fresh=counters["fresh"],
        cached=counters["cached"], pruned=counters["pruned"],
        invalid=counters["invalid"], generations=generations,
        degraded=degraded, elapsed_s=elapsed, pareto=pareto,
        history=history, db_path=database.path,
    )
    # Static validation of the serve-ready record: a tuner bug that
    # minted a record no plan compiler could honor should fail here,
    # at the producer, not at freeze time in a different process.
    from ..check import check_tuned_record

    findings = [d for d in check_tuned_record(result.record, fingerprint,
                                              num_units=space.num_units)
                if d.is_error]
    if findings:
        raise ConfigError(
            "tuned record failed static validation: "
            + "; ".join(d.render() for d in findings),
            network=sliced.name, findings=len(findings))
    return result
