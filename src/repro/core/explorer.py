"""The design-space exploration tool of Section V-A.

The paper built this as a Torch extension: read a network description,
enumerate every fusion partition, and report the storage/transfer (or
recompute/transfer) trade-off of each. This module is the same tool over
the :mod:`repro.nn` IR. Even for VGGNet-E the full space is explored in
well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .. import obs
from ..errors import BudgetExceeded, ConfigError, SimFaultError
from ..faults.budget import ExplorationBudget
from ..nn.network import Network
from ..nn.stages import FusionUnit, extract_levels, independent_units, pooling_merged_units
from .fusion import Strategy
from .pareto import pareto_front
from .partition import PartitionAnalysis, enumerate_partitions


@dataclass(frozen=True)
class ExplorationResult:
    """Every scored partition of a network plus its Pareto frontier.

    ``degraded`` marks a budget-truncated search: ``points`` then holds
    the best-so-far sweep (never empty) and ``front`` the Pareto frontier
    of *those* points — a valid but possibly incomplete answer.
    """

    network_name: str
    units: Tuple[FusionUnit, ...]
    strategy: Strategy
    points: Tuple[PartitionAnalysis, ...]
    front: Tuple[PartitionAnalysis, ...]
    degraded: bool = field(default=False)

    @property
    def num_partitions(self) -> int:
        return len(self.points)

    @property
    def layer_by_layer(self) -> PartitionAnalysis:
        """The no-fusion extreme (the paper's point A)."""
        for point in self.points:
            if point.is_layer_by_layer:
                return point
        raise SimFaultError("layer-by-layer partition missing from exploration",
                            network=self.network_name,
                            partitions=self.num_partitions,
                            degraded=self.degraded)

    @property
    def fully_fused(self) -> PartitionAnalysis:
        """The single-pyramid extreme (the paper's point C)."""
        for point in self.points:
            if point.is_fully_fused:
                return point
        raise SimFaultError("fully fused partition missing from exploration",
                            network=self.network_name,
                            partitions=self.num_partitions,
                            degraded=self.degraded)

    def best_under_storage(self, budget_bytes: int) -> Optional[PartitionAnalysis]:
        """Minimum-transfer partition whose extra storage fits the budget.

        Ties on both costs resolve to the earliest point in enumeration
        order — the partition index is the final sort key, so the pick
        is stable across Python versions and serial/parallel sweeps
        (plan-cache keys depend on it).
        """
        feasible = [(i, p) for i, p in enumerate(self.points)
                    if p.extra_storage_bytes <= budget_bytes]
        if not feasible:
            return None
        return min(feasible,
                   key=lambda ip: (ip[1].feature_transfer_bytes,
                                   ip[1].extra_storage_bytes, ip[0]))[1]

    def best_under_transfer(self, budget_bytes: int) -> Optional[PartitionAnalysis]:
        """Minimum-storage partition whose traffic fits the budget.

        Equal-cost ties resolve by partition index, like
        :meth:`best_under_storage`.
        """
        feasible = [(i, p) for i, p in enumerate(self.points)
                    if p.feature_transfer_bytes <= budget_bytes]
        if not feasible:
            return None
        return min(feasible,
                   key=lambda ip: (ip[1].extra_storage_bytes,
                                   ip[1].feature_transfer_bytes, ip[0]))[1]


def explore(network: Network, num_convs: Optional[int] = None,
            strategy: Strategy = Strategy.REUSE,
            merge_pooling: bool = False,
            tip_h: int = 1, tip_w: int = 1,
            budget: Optional[ExplorationBudget] = None,
            on_budget: str = "degrade", jobs: int = 1) -> ExplorationResult:
    """Explore all fusion partitions of (a prefix of) a network.

    Parameters
    ----------
    network:
        Any zoo or user network; only its feature extractor is considered.
    num_convs:
        If given, truncate after this many convolutional layers first (the
        paper explores the first 5 convs + 2 pools of VGGNet-E).
    strategy:
        Intermediate-data strategy for fused groups.
    merge_pooling:
        When True, pooling layers move with their preceding convolution as
        one unit (Figure 2 grouping). The paper's Figure 7 search keeps
        them independent (default), letting the optimizer discover that
        merging is free.
    budget:
        An :class:`~repro.faults.budget.ExplorationBudget` bounding the
        sweep by evaluations and/or wall-clock. When it trips, behavior
        follows ``on_budget``.
    on_budget:
        ``"degrade"`` (default): return the best-so-far frontier with
        ``degraded=True`` — the graceful-degradation contract a serving
        system needs. ``"raise"``: raise
        :class:`~repro.errors.BudgetExceeded` instead.
    jobs:
        Number of worker processes for the partition sweep. ``1``
        (default) runs serial; ``N > 1`` fans the scoring across a
        process pool and returns points in the identical serial order
        (a ``budget`` forces the serial path, which it needs for its
        per-evaluation charging).
    """
    if on_budget not in ("degrade", "raise"):
        raise ConfigError("on_budget must be 'degrade' or 'raise'",
                          on_budget=on_budget)
    sliced = network.prefix(num_convs) if num_convs is not None else network
    if budget is not None:
        budget.start()
    with obs.span("explore", network=sliced.name, strategy=strategy.name):
        with obs.span("explore.extract_units"):
            levels = extract_levels(sliced)
            units = (pooling_merged_units(levels) if merge_pooling
                     else independent_units(levels))
        with obs.span("explore.enumerate", units=len(units)):
            points = enumerate_partitions(units, strategy=strategy,
                                          tip_h=tip_h, tip_w=tip_w,
                                          budget=budget, jobs=jobs)
        degraded = budget is not None and budget.tripped
        if degraded:
            obs.add_counter("explore.degraded_searches")
            obs.add_counter("faults.budget_trips")
            if on_budget == "raise":
                raise BudgetExceeded(
                    "exploration budget exhausted",
                    network=sliced.name, scored=len(points),
                    budget=budget.describe(),
                    elapsed_s=round(budget.elapsed_seconds, 3))
        with obs.span("explore.pareto", points=len(points)):
            front = pareto_front(
                points,
                cost_x=lambda p: (p.extra_storage_bytes
                                  if strategy is Strategy.REUSE else p.extra_ops),
                cost_y=lambda p: p.feature_transfer_bytes,
            )
        obs.add_counter("explore.partitions_scored", len(points))
        obs.add_counter("explore.partitions_pruned", len(points) - len(front))
        obs.add_counter("explore.pareto_points", len(front))
    return ExplorationResult(
        network_name=sliced.name,
        units=tuple(units),
        strategy=strategy,
        points=tuple(points),
        front=tuple(front),
        degraded=degraded,
    )
