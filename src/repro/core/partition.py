"""Network partitioning: the 2^(l-1) fusion-grouping search of Section V-B.

Given ``l`` fusion units, every way of cutting the sequence into
contiguous groups corresponds to a subset of the ``l-1`` boundaries —
``2^(l-1)`` partitions, from fully layer-by-layer ``(1,1,...,1)`` to a
single all-fused pyramid ``(l,)``. Each partition is scored by total DRAM
feature-map traffic (the Figure 7 y-axis) and total extra on-chip reuse
storage (the x-axis), or extra arithmetic under the recompute strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator, List, Sequence, Tuple

from .. import obs
from ..errors import ConfigError
from ..nn.stages import FusionUnit
from .fusion import GroupAnalysis, Strategy, analyze_group, units_to_levels


def compositions(n: int) -> Iterator[Tuple[int, ...]]:
    """All ordered compositions of ``n`` (group sizes for ``n`` units).

    ``compositions(3)`` yields (1,1,1), (1,2), (2,1), (3) — the paper's
    example. There are ``2^(n-1)`` of them.
    """
    if n < 0:
        raise ConfigError("n must be non-negative", n=n)
    if n == 0:
        yield ()
        return
    for cut_count in range(n):
        for cuts in combinations(range(1, n), cut_count):
            bounds = (0,) + cuts + (n,)
            yield tuple(bounds[i + 1] - bounds[i] for i in range(len(bounds) - 1))


@dataclass(frozen=True)
class PartitionAnalysis:
    """A scored partition of the network's fusion units into groups."""

    sizes: Tuple[int, ...]
    groups: Tuple[GroupAnalysis, ...]
    strategy: Strategy

    @property
    def feature_transfer_bytes(self) -> int:
        """DRAM feature-map traffic per image (Figure 7 y-axis): every
        group reads its input and writes its output."""
        return sum(g.transfer.feature_map_bytes for g in self.groups)

    @property
    def total_transfer_bytes(self) -> int:
        """Feature maps plus a single load of all weights."""
        return self.feature_transfer_bytes + sum(g.transfer.weight_bytes for g in self.groups)

    @property
    def extra_storage_bytes(self) -> int:
        """Extra on-chip reuse storage (Figure 7 x-axis)."""
        return sum(g.extra_storage_bytes for g in self.groups)

    @property
    def extra_ops(self) -> int:
        return sum(g.extra_ops for g in self.groups)

    @property
    def baseline_ops(self) -> int:
        return sum(g.baseline_ops for g in self.groups)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def is_layer_by_layer(self) -> bool:
        return all(size == 1 for size in self.sizes)

    @property
    def is_fully_fused(self) -> bool:
        return len(self.sizes) == 1

    def describe(self) -> str:
        return " | ".join(g.name for g in self.groups)


def analyze_partition(units: Sequence[FusionUnit], sizes: Sequence[int],
                      strategy: Strategy = Strategy.REUSE,
                      tip_h: int = 1, tip_w: int = 1) -> PartitionAnalysis:
    """Score one partition (group sizes must sum to ``len(units)``)."""
    if sum(sizes) != len(units):
        raise ConfigError(f"sizes {tuple(sizes)} do not cover {len(units)} units",
                          sizes=tuple(sizes), units=len(units))
    if any(size <= 0 for size in sizes):
        raise ConfigError(f"group sizes must be positive: {tuple(sizes)}",
                          sizes=tuple(sizes))
    groups: List[GroupAnalysis] = []
    start = 0
    for size in sizes:
        run = units[start:start + size]
        groups.append(
            analyze_group(units_to_levels(run), strategy=strategy, tip_h=tip_h, tip_w=tip_w)
        )
        start += size
    return PartitionAnalysis(sizes=tuple(sizes), groups=tuple(groups), strategy=strategy)


def _score_partition(args) -> PartitionAnalysis:
    """Pool target: score one partition (module-level for picklability)."""
    units, sizes, strategy, tip_h, tip_w = args
    return analyze_partition(units, sizes, strategy=strategy,
                             tip_h=tip_h, tip_w=tip_w)


def enumerate_partitions(units: Sequence[FusionUnit],
                         strategy: Strategy = Strategy.REUSE,
                         tip_h: int = 1, tip_w: int = 1,
                         budget=None, jobs: int = 1) -> List[PartitionAnalysis]:
    """Score all ``2^(l-1)`` partitions of the unit sequence.

    ``budget`` (an :class:`~repro.faults.budget.ExplorationBudget`) is
    charged one evaluation per partition; once it trips, enumeration
    stops at that partition boundary and the points scored so far are
    returned (at least one, so a degraded search is never empty). The
    budget object's ``tripped`` flag tells the caller the sweep was cut
    short.

    ``jobs > 1`` fans the scoring across a process pool (useful for
    large unit counts — VGGNet-E at full depth is 2^20 partitions).
    Results come back in exactly the serial enumeration order, so
    frontiers and tie-breaks are identical serial vs parallel. A budget
    needs the serial charge-per-evaluation loop, so ``budget`` forces
    the serial path regardless of ``jobs``.
    """
    if jobs < 1:
        raise ConfigError("jobs must be >= 1", jobs=jobs)
    parallel = jobs > 1 and budget is None
    with obs.span("partition.enumerate", units=len(units),
                  strategy=strategy.name, jobs=jobs if parallel else 1) as span:
        points: List[PartitionAnalysis] = []
        if parallel:
            import concurrent.futures

            work = [(tuple(units), sizes, strategy, tip_h, tip_w)
                    for sizes in compositions(len(units))]
            chunksize = max(1, len(work) // (jobs * 8))
            with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
                points = list(pool.map(_score_partition, work,
                                       chunksize=chunksize))
        else:
            for sizes in compositions(len(units)):
                if budget is not None and points and budget.exceeded():
                    break
                points.append(analyze_partition(units, sizes, strategy=strategy,
                                                tip_h=tip_h, tip_w=tip_w))
                if budget is not None:
                    budget.charge()
        span.set(partitions=len(points))
        obs.add_counter("partition.analyzed", len(points))
        obs.add_counter("partition.groups_analyzed",
                        sum(len(p.groups) for p in points))
    return points
