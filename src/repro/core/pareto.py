"""Pareto-frontier extraction for the storage/transfer trade-off (Fig. 7).

A design point is Pareto-optimal when no other point is better on one axis
and at least as good on the other. The paper's Figure 7 connects the
optimal points with a solid line; :func:`pareto_front` returns them sorted
by storage so callers can draw the same curve.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar
from ..errors import ConfigError

T = TypeVar("T")


def pareto_front(points: Sequence[T],
                 cost_x: Callable[[T], float],
                 cost_y: Callable[[T], float]) -> List[T]:
    """Minimizing Pareto front over two cost axes.

    Among points with equal ``cost_x``, only the lowest ``cost_y``
    survives; the returned list is sorted by ``cost_x`` ascending and has
    strictly decreasing ``cost_y``.
    """
    if not points:
        return []
    ordered = sorted(points, key=lambda p: (cost_x(p), cost_y(p)))
    front: List[T] = []
    best_y = float("inf")
    for point in ordered:
        y = cost_y(point)
        if y < best_y:
            front.append(point)
            best_y = y
    return front


def is_dominated(point: T, others: Sequence[T],
                 cost_x: Callable[[T], float],
                 cost_y: Callable[[T], float]) -> bool:
    """True when some other point is <= on both axes and < on at least one."""
    px, py = cost_x(point), cost_y(point)
    for other in others:
        if other is point:
            continue
        ox, oy = cost_x(other), cost_y(other)
        if ox <= px and oy <= py and (ox < px or oy < py):
            return True
    return False


def knee_point(front: Sequence[T],
               cost_x: Callable[[T], float],
               cost_y: Callable[[T], float]) -> T:
    """The front point with maximum normalized distance from the line
    joining the extremes — a conventional "best trade-off" pick (the
    paper's point B is such an interior compromise)."""
    if not front:
        raise ConfigError("empty front")
    if len(front) <= 2:
        return front[0]
    xs = [cost_x(p) for p in front]
    ys = [cost_y(p) for p in front]
    x_span = max(xs) - min(xs) or 1.0
    y_span = max(ys) - min(ys) or 1.0
    x0, y0 = xs[0] / x_span, ys[0] / y_span
    x1, y1 = xs[-1] / x_span, ys[-1] / y_span
    best, best_dist = front[0], -1.0
    for point, x, y in zip(front, xs, ys):
        # Perpendicular distance from (x,y) to the chord (x0,y0)-(x1,y1).
        num = abs((y1 - y0) * (x / x_span) - (x1 - x0) * (y / y_span) + x1 * y0 - y1 * x0)
        if num > best_dist:
            best, best_dist = point, num
    return best
