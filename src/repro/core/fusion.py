"""Fusion groups: a contiguous run of fusion units evaluated as one pyramid.

A :class:`FusionGroup` bundles the geometry and the Section III-B cost
model into a single analysis record, under either intermediate-data
strategy of Section III-C:

* ``Strategy.REUSE`` — cache shared intermediate values in BL/BT buffers
  (costs on-chip storage, no extra arithmetic);
* ``Strategy.RECOMPUTE`` — recompute shared values in every pyramid
  (costs arithmetic, no extra storage).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..nn.shapes import ShapeError, TensorShape
from ..nn.stages import FusionUnit, Level
from .costs import (
    TransferBreakdown,
    group_transfer,
    intermediate_transfer_saved,
    one_pass_ops,
    recompute_overhead_ops,
    reuse_storage_bytes,
)
from .pyramid import PyramidGeometry, build_pyramid


class Strategy(enum.Enum):
    """How shared intermediate pyramid values are handled (Section III-C)."""

    REUSE = "reuse"
    RECOMPUTE = "recompute"


@dataclass(frozen=True)
class GroupAnalysis:
    """Costs and benefits of evaluating one group as a fused pyramid."""

    levels: Tuple[Level, ...]
    strategy: Strategy
    tip_h: int
    tip_w: int
    transfer: TransferBreakdown
    extra_storage_bytes: int
    extra_ops: int
    baseline_ops: int
    transfer_saved_bytes: int

    @property
    def name(self) -> str:
        return "+".join(level.name for level in self.levels)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def is_fused(self) -> bool:
        return len(self.levels) > 1

    @property
    def ops_increase_factor(self) -> float:
        """Total-arithmetic multiplier vs a redundancy-free evaluation."""
        if self.baseline_ops == 0:
            return 1.0
        return (self.baseline_ops + self.extra_ops) / self.baseline_ops

    @property
    def input_shape(self) -> TensorShape:
        return self.levels[0].in_shape

    @property
    def output_shape(self) -> TensorShape:
        return self.levels[-1].out_shape


def analyze_group(levels: Sequence[Level], strategy: Strategy = Strategy.REUSE,
                  tip_h: int = 1, tip_w: int = 1,
                  include_input_level: bool = False) -> GroupAnalysis:
    """Run the Section III-B cost model over one fused group of levels."""
    if not levels:
        raise ShapeError("a fusion group needs at least one level")
    levels = tuple(levels)
    if strategy is Strategy.REUSE:
        storage = reuse_storage_bytes(levels, tip_h, tip_w, include_input_level)
        extra_ops = 0
    else:
        storage = 0
        extra_ops = recompute_overhead_ops(levels, tip_h, tip_w)
    if len(levels) == 1:
        # A single-level group is plain layer-by-layer evaluation: no
        # intermediate data exists, so neither strategy costs anything.
        storage = 0
        extra_ops = 0
    return GroupAnalysis(
        levels=levels,
        strategy=strategy,
        tip_h=tip_h,
        tip_w=tip_w,
        transfer=group_transfer(levels),
        extra_storage_bytes=storage,
        extra_ops=extra_ops,
        baseline_ops=one_pass_ops(levels),
        transfer_saved_bytes=intermediate_transfer_saved(levels),
    )


def units_to_levels(units: Sequence[FusionUnit]) -> List[Level]:
    """Flatten a run of fusion units into its constituent levels."""
    levels: List[Level] = []
    for unit in units:
        levels.extend(unit.levels)
    return levels


def group_pyramid(levels: Sequence[Level], tip_h: int = 1, tip_w: int = 1) -> PyramidGeometry:
    """Convenience re-export: the pyramid geometry for a group."""
    return build_pyramid(levels, tip_h, tip_w)
