"""Exact Pareto frontier by dynamic programming over contiguous groups.

The paper's tool enumerates all ``2^(l-1)`` partitions ("even for the
large VGGNet-E network, the entire design space is explored in just a
few minutes"). Because both scores are additive over groups —

* transfer = sum over groups of (input + output bytes),
* storage  = sum over groups of reuse-buffer bytes,

the Pareto front over partitions admits an exact dynamic program: the
front of partitions covering a prefix extends, group by group, into the
front of longer prefixes, and dominated partials can never complete into
non-dominated totals. This makes the *full* 21-level VGGNet-E space
(2^20 partitions) exact in milliseconds, where enumeration would churn
through a million candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..nn.stages import FusionUnit
from .costs import group_transfer, reuse_storage_bytes
from .fusion import units_to_levels


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto-optimal partition: group sizes and its two scores."""

    sizes: Tuple[int, ...]
    storage_bytes: int
    transfer_bytes: int


def _group_scores(units: Sequence[FusionUnit], tip_h: int,
                  tip_w: int) -> Dict[Tuple[int, int], Tuple[int, int]]:
    """(storage, transfer) for every contiguous unit run [i, j)."""
    scores: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for i in range(len(units)):
        for j in range(i + 1, len(units) + 1):
            levels = units_to_levels(units[i:j])
            storage = reuse_storage_bytes(levels, tip_h, tip_w) if j - i > 1 else 0
            transfer = group_transfer(levels).feature_map_bytes
            scores[(i, j)] = (storage, transfer)
    return scores


def _prune(points: List[FrontierPoint]) -> List[FrontierPoint]:
    """Keep only non-dominated (storage, transfer) pairs."""
    points.sort(key=lambda p: (p.storage_bytes, p.transfer_bytes))
    kept: List[FrontierPoint] = []
    best = None
    for point in points:
        if best is None or point.transfer_bytes < best:
            kept.append(point)
            best = point.transfer_bytes
    return kept


def pareto_frontier_dp(units: Sequence[FusionUnit], tip_h: int = 1,
                       tip_w: int = 1) -> List[FrontierPoint]:
    """The exact storage/transfer Pareto front over all partitions.

    Equivalent to Pareto-filtering
    :func:`repro.core.partition.enumerate_partitions` but polynomial in
    practice: O(l^2) group evaluations plus front extensions, with the
    per-prefix fronts pruned to non-dominated points.
    """
    n = len(units)
    if n == 0:
        return []
    scores = _group_scores(units, tip_h, tip_w)
    # fronts[i]: Pareto-optimal partials covering units[:i].
    fronts: List[List[FrontierPoint]] = [[] for _ in range(n + 1)]
    fronts[0] = [FrontierPoint(sizes=(), storage_bytes=0, transfer_bytes=0)]
    for i in range(n):
        if not fronts[i]:
            continue
        for j in range(i + 1, n + 1):
            storage, transfer = scores[(i, j)]
            extended = [
                FrontierPoint(
                    sizes=partial.sizes + (j - i,),
                    storage_bytes=partial.storage_bytes + storage,
                    transfer_bytes=partial.transfer_bytes + transfer,
                )
                for partial in fronts[i]
            ]
            fronts[j] = _prune(fronts[j] + extended)
    return fronts[n]
