"""Cost models of Sections III-B and III-C.

Three quantities characterize a fused group:

* **Reuse storage** — extra on-chip memory holding the intermediate values
  shared by consecutive pyramids. For a consumer level with kernel K and
  stride S over an input tile of height D, the paper's model stores
  ``D x (K-S) x N`` elements on the right of the tile (the BL buffer,
  reused as the base slides along a row) and ``(K-S) x W x N`` at the
  bottom (the BT buffer, reused by the next row of pyramids; W is the full
  feature-map width, per the Listing 4 implementation where BT is indexed
  by the absolute column).

* **Recompute overhead** — the extra arithmetic if shared intermediate
  values are recomputed by every pyramid that needs them instead of being
  cached. Computed *exactly* by integrating per-position pyramid
  footprints (with border clamping) over all positions, then subtracting
  the one-pass operation count.

* **DRAM transfer** — feature-map bytes crossing the chip boundary: the
  group's input map is read once and its final output written once;
  everything in between stays on chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..nn.shapes import BYTES_PER_WORD
from ..nn.stages import Level
from .pyramid import build_pyramid, position_footprint


@dataclass(frozen=True)
class ReuseBufferPlan:
    """Reuse-buffer sizing for one intermediate feature map.

    The map is produced by ``producer`` and consumed by a level with
    ``kernel``/``stride``; ``overlap = K - S`` rows/columns are shared by
    adjacent pyramids and must be buffered.
    """

    producer_name: str
    consumer_name: str
    channels: int
    overlap: int
    bl_elements: int  # right-edge columns, reused along a pyramid row
    bt_elements: int  # bottom rows (full map width), reused by the next row

    @property
    def total_elements(self) -> int:
        return self.bl_elements + self.bt_elements

    @property
    def total_bytes(self) -> int:
        return self.total_elements * BYTES_PER_WORD


def reuse_buffer_plans(levels: Sequence[Level], tip_h: int = 1, tip_w: int = 1,
                       include_input_level: bool = False,
                       bt_full_width: bool = True) -> "list[ReuseBufferPlan]":
    """Size the BL/BT reuse buffers for every intermediate map of a group.

    Only *intermediate* maps (between fused levels) are counted by default,
    matching Figure 7's x-axis ("extra storage required to hold the
    intermediate data between the fused-layers"). Pass
    ``include_input_level=True`` to also count row-reuse buffering of the
    group's DRAM input (needed for the input to be read exactly once; a
    few KB for the networks studied).

    ``bt_full_width`` selects the BT-sizing convention: True (default)
    spans the full feature-map row, as Listing 4's implementation does
    (BT is indexed by the absolute column, so the whole row must be
    buffered for the next pyramid row) — this reproduces the paper's
    362 KB for the five-layer VGG fusion. False applies Section III-B's
    formula literally, ``(K - S) x D x N`` with D the tile extent, a
    lower bound that ignores the row-to-row reuse distance.
    """
    geometry = build_pyramid(levels, tip_h, tip_w)
    plans: "list[ReuseBufferPlan]" = []
    first = 0 if include_input_level else 1
    for i in range(first, len(levels)):
        consumer_tile = geometry.tiles[i]
        consumer = consumer_tile.level
        overlap = consumer.overlap
        if overlap == 0:
            continue
        channels = consumer.in_channels
        # BL: a (tile height) x (K-S) column strip per channel.
        bl = consumer_tile.in_h * overlap * channels
        # BT: (K-S) rows per channel; full map width under the Listing 4
        # convention (stored values are computed feature data, so width
        # excludes padding zeros), tile width under the literal formula.
        bt_width = consumer.in_shape.width if bt_full_width else consumer_tile.in_w
        bt = overlap * bt_width * channels
        producer_name = levels[i - 1].name if i > 0 else "<input>"
        plans.append(
            ReuseBufferPlan(
                producer_name=producer_name,
                consumer_name=consumer.name,
                channels=channels,
                overlap=overlap,
                bl_elements=bl,
                bt_elements=bt,
            )
        )
    return plans


def reuse_storage_bytes(levels: Sequence[Level], tip_h: int = 1, tip_w: int = 1,
                        include_input_level: bool = False,
                        bt_full_width: bool = True) -> int:
    """Total extra on-chip bytes for the reuse strategy (Section III-B)."""
    plans = reuse_buffer_plans(levels, tip_h, tip_w, include_input_level,
                               bt_full_width)
    return sum(plan.total_bytes for plan in plans)


def one_pass_ops(levels: Sequence[Level]) -> int:
    """Arithmetic operations to evaluate the group once with no redundancy
    (what the reuse strategy — and a layer-by-layer evaluation — performs)."""
    return sum(level.total_ops for level in levels)


def recompute_ops(levels: Sequence[Level], tip_h: int = 1, tip_w: int = 1) -> int:
    """Total arithmetic under the recompute strategy.

    Every pyramid computes its entire footprint independently; shared
    intermediate points are computed once per pyramid that needs them.
    Summed exactly over all pyramid positions with border clamping.
    """
    if not levels:
        return 0
    geometry = build_pyramid(levels, tip_h, tip_w)
    rows, cols = geometry.num_positions
    total = 0
    for r in range(rows):
        for c in range(cols):
            footprint = position_footprint(levels, r, c, tip_h, tip_w)
            for level, (r0, r1, c0, c1) in zip(levels, footprint.out_ranges):
                total += (r1 - r0) * (c1 - c0) * level.out_channels * level.ops_per_output
    return total


def recompute_overhead_ops(levels: Sequence[Level], tip_h: int = 1, tip_w: int = 1) -> int:
    """Extra operations of recompute relative to one redundancy-free pass."""
    return recompute_ops(levels, tip_h, tip_w) - one_pass_ops(levels)


def recompute_overhead_adjacent(levels: Sequence[Level], tip_h: int = 1,
                                tip_w: int = 1) -> int:
    """The paper's Section III-B recompute estimate.

    "We can determine the cost of recomputation simply by examining two
    consecutive pyramids and examining the locations where they overlap
    (e.g., the 6M blue circles) ... Summing these values gives the
    arithmetic overhead of recomputing intermediate values for each
    pyramid."

    For each intermediate level the horizontally-adjacent overlap is a
    ``tile_h x (tile_w - step)`` strip per feature map; its recompute cost
    is charged once per pyramid. This deliberately ignores the compounding
    of redundancy across rows and across multiple levels, so it lower-
    bounds :func:`recompute_overhead_ops` (the exact count); the paper's
    headline numbers (678M extra ops for AlexNet's first two layers, 470B
    for all of VGGNet-E) come from this style of estimate.
    """
    if len(levels) < 2:
        return 0
    geometry = build_pyramid(levels, tip_h, tip_w)
    rows, cols = geometry.num_positions
    num_pyramids = rows * cols
    extra = 0
    for i in range(len(levels) - 1):
        tile = geometry.tiles[i]
        # Advance of level i's output per pyramid step = the stride product
        # of everything above it (the consumer's input step).
        step = geometry.tiles[i + 1].step_w
        overlap_w = max(tile.out_w - step, 0)
        points = tile.out_h * overlap_w * levels[i].out_channels
        extra += points * levels[i].ops_per_output * num_pyramids
    return extra


@dataclass(frozen=True)
class TransferBreakdown:
    """Feature-map DRAM traffic for a fused group (bytes per image)."""

    input_bytes: int
    output_bytes: int
    weight_bytes: int

    @property
    def feature_map_bytes(self) -> int:
        return self.input_bytes + self.output_bytes

    @property
    def total_bytes(self) -> int:
        return self.feature_map_bytes + self.weight_bytes


def group_transfer(levels: Sequence[Level]) -> TransferBreakdown:
    """DRAM traffic for one fused group: input read once, output written
    once, weights loaded once (they fit on chip for early layers)."""
    first, last = levels[0], levels[-1]
    weights = sum(level.weight_count for level in levels)
    return TransferBreakdown(
        input_bytes=first.in_shape.bytes,
        output_bytes=last.out_shape.bytes,
        weight_bytes=weights * BYTES_PER_WORD,
    )


def intermediate_transfer_saved(levels: Sequence[Level]) -> int:
    """Bytes of DRAM traffic a fused group avoids: each intermediate map
    would otherwise be written once and read back once (Section III-B)."""
    saved = 0
    for level in levels[:-1]:
        saved += 2 * level.out_shape.bytes
    return saved
