"""Pyramid geometry: the backward tile-size computation of Section III-B.

Starting from a tile of the fused group's *final* output (the pyramid tip,
``1x1`` by construction in the paper's model), each level's required input
tile follows ``D = S*D' + K - S``. Walking backwards over all fused levels
yields the pyramid: per-level input/output tile sizes, down to the pyramid
base read from DRAM.

Tiles live in *padded* coordinates at each level's input (padding zeros are
materialized by the accelerator's padding stage). Tiles near feature-map
borders clamp to the map; :func:`clamped_range` computes exact per-position
extents, which the recompute-cost model integrates over.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Sequence, Tuple

from ..nn.shapes import ShapeError, input_extent_for
from ..nn.stages import Level


@dataclass(frozen=True)
class LevelTile:
    """Tile dimensions at one level of a pyramid (steady-state interior)."""

    level: Level
    out_h: int
    out_w: int
    in_h: int  # input tile extent, padded coordinates
    in_w: int
    step_h: int  # rows/cols by which this level's input advances per
    step_w: int  # pyramid step (the consumer-side stride product)

    @property
    def new_in_h(self) -> int:
        """Fresh input rows needed per vertical pyramid step (the rest is
        the ``K - S`` overlap held in reuse buffers)."""
        return min(self.step_h, self.in_h)

    @property
    def new_in_w(self) -> int:
        return min(self.step_w, self.in_w)


@dataclass(frozen=True)
class PyramidGeometry:
    """The full pyramid for a fused group: one :class:`LevelTile` per level,
    ordered from first (base) to last (tip) level."""

    tiles: Tuple[LevelTile, ...]
    tip_h: int
    tip_w: int

    @property
    def levels(self) -> List[Level]:
        return [tile.level for tile in self.tiles]

    @property
    def base_h(self) -> int:
        """Input-tile height at the group's first level (padded coords)."""
        return self.tiles[0].in_h

    @property
    def base_w(self) -> int:
        return self.tiles[0].in_w

    @property
    def num_positions(self) -> Tuple[int, int]:
        """Number of pyramid positions (rows, cols) needed to cover the
        group's final output feature map."""
        final = self.tiles[-1].level.out_shape
        return ceil(final.height / self.tip_h), ceil(final.width / self.tip_w)


def build_pyramid(levels: Sequence[Level], tip_h: int = 1, tip_w: int = 1) -> PyramidGeometry:
    """Compute pyramid tile sizes for ``levels`` fused into one group.

    ``tip_h x tip_w`` is the output tile at the final level (Section III-B
    uses 1x1; the FPGA design may use larger tips — see the ablation
    benchmarks). Raises :class:`ShapeError` for an empty group or a tip
    larger than the final output map.
    """
    if not levels:
        raise ShapeError("cannot build a pyramid over zero levels")
    final = levels[-1].out_shape
    if tip_h <= 0 or tip_w <= 0:
        raise ShapeError(f"tip must be positive, got {tip_h}x{tip_w}")
    if tip_h > final.height or tip_w > final.width:
        raise ShapeError(
            f"tip {tip_h}x{tip_w} exceeds final output map {final.height}x{final.width}"
        )

    out_h, out_w = tip_h, tip_w
    step_h, step_w = tip_h, tip_w
    tiles: List[LevelTile] = []
    for level in reversed(levels):
        in_h = input_extent_for(out_h, level.kernel, level.stride)
        in_w = input_extent_for(out_w, level.kernel, level.stride)
        step_h *= level.stride
        step_w *= level.stride
        padded = level.padded_in_shape
        tiles.append(
            LevelTile(
                level=level,
                out_h=out_h,
                out_w=out_w,
                in_h=min(in_h, padded.height),
                in_w=min(in_w, padded.width),
                step_h=step_h,
                step_w=step_w,
            )
        )
        out_h, out_w = tiles[-1].in_h, tiles[-1].in_w
        # The next level up produces this level's *unpadded* input; its
        # output tile is the input tile we just derived (padding is applied
        # between levels, so a producing tile may be smaller at the borders
        # — the steady-state interior value is what sizes the hardware).
    return PyramidGeometry(tiles=tuple(reversed(tiles)), tip_h=tip_h, tip_w=tip_w)


def backward_range(out_lo: int, out_hi: int, kernel: int, stride: int) -> Tuple[int, int]:
    """Map an output index range ``[out_lo, out_hi)`` to the padded-input
    range it depends on: ``[out_lo*S, (out_hi-1)*S + K)``."""
    if out_hi <= out_lo:
        return (out_lo * stride, out_lo * stride)
    return (out_lo * stride, (out_hi - 1) * stride + kernel)


def clamped_range(lo: int, hi: int, extent: int) -> Tuple[int, int]:
    """Clamp ``[lo, hi)`` to ``[0, extent)``; empty ranges collapse in-bounds."""
    lo = min(max(lo, 0), extent)
    hi = min(max(hi, lo), extent)
    return (lo, hi)


@dataclass(frozen=True)
class PositionFootprint:
    """Exact per-level computed regions for one pyramid position.

    ``out_ranges[i]`` is the (row_lo, row_hi, col_lo, col_hi) region of
    level ``i``'s *output* map (unpadded coordinates) that the pyramid at
    this position must have available.
    """

    out_ranges: Tuple[Tuple[int, int, int, int], ...]


def position_footprint(levels: Sequence[Level], tip_row: int, tip_col: int,
                       tip_h: int = 1, tip_w: int = 1) -> PositionFootprint:
    """Trace one pyramid position backward with exact border clamping.

    ``tip_row``/``tip_col`` index pyramid positions (each covering a
    ``tip_h x tip_w`` block of the final output map).
    """
    final = levels[-1].out_shape
    row_lo, row_hi = clamped_range(tip_row * tip_h, tip_row * tip_h + tip_h, final.height)
    col_lo, col_hi = clamped_range(tip_col * tip_w, tip_col * tip_w + tip_w, final.width)

    ranges: List[Tuple[int, int, int, int]] = []
    for level in reversed(levels):
        ranges.append((row_lo, row_hi, col_lo, col_hi))
        # Back-project this level's output range to its producer's output
        # (= this level's unpadded input): padded input range, minus pad,
        # clamped to the unpadded map.
        in_row_lo, in_row_hi = backward_range(row_lo, row_hi, level.kernel, level.stride)
        in_col_lo, in_col_hi = backward_range(col_lo, col_hi, level.kernel, level.stride)
        unpadded = level.in_shape
        row_lo, row_hi = clamped_range(in_row_lo - level.pad, in_row_hi - level.pad,
                                       unpadded.height)
        col_lo, col_hi = clamped_range(in_col_lo - level.pad, in_col_hi - level.pad,
                                       unpadded.width)
    return PositionFootprint(out_ranges=tuple(reversed(ranges)))
