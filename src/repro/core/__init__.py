"""Core contribution: fused-layer pyramid analysis and design-space search."""

from .costs import (
    ReuseBufferPlan,
    TransferBreakdown,
    group_transfer,
    intermediate_transfer_saved,
    one_pass_ops,
    recompute_ops,
    recompute_overhead_ops,
    reuse_buffer_plans,
    reuse_storage_bytes,
)
from .explorer import ExplorationResult, explore
from .frontier import FrontierPoint, pareto_frontier_dp
from .fusion import GroupAnalysis, Strategy, analyze_group, units_to_levels
from .pareto import is_dominated, knee_point, pareto_front
from .partition import (
    PartitionAnalysis,
    analyze_partition,
    compositions,
    enumerate_partitions,
)
from .schedule import FusedSchedule, LayerTileParams, PositionParams
from .pyramid import (
    LevelTile,
    PositionFootprint,
    PyramidGeometry,
    backward_range,
    build_pyramid,
    clamped_range,
    position_footprint,
)

__all__ = [
    "ExplorationResult",
    "FrontierPoint",
    "FusedSchedule",
    "GroupAnalysis",
    "LevelTile",
    "LayerTileParams",
    "PartitionAnalysis",
    "PositionFootprint",
    "PositionParams",
    "PyramidGeometry",
    "ReuseBufferPlan",
    "Strategy",
    "TransferBreakdown",
    "analyze_group",
    "analyze_partition",
    "backward_range",
    "build_pyramid",
    "clamped_range",
    "compositions",
    "enumerate_partitions",
    "explore",
    "group_transfer",
    "intermediate_transfer_saved",
    "is_dominated",
    "knee_point",
    "one_pass_ops",
    "pareto_front",
    "pareto_frontier_dp",
    "position_footprint",
    "recompute_ops",
    "recompute_overhead_ops",
    "reuse_buffer_plans",
    "reuse_storage_bytes",
    "units_to_levels",
]
