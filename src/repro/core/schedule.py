"""The calcparams formulas of Section IV-B, as data.

The fused accelerator is configured at design time with the pyramid base
(X, Y) and base strides (Sx, Sy); at run time ``calcparams`` derives,
for every pyramid position (row, col), the DRAM load origin and each
layer's tile dimensions::

    rowt = Y + (row-1)*Sy - (K-S)   if row > 0 else 0
    colt = X + (col-1)*Sx - (K-S)   if col > 0 else 0
    inW1 = X            if col == 0 else Sx + K - S
    inH1 = Y            if row == 0 else Sy + K - S
    inWn = outW(n-1) (+ K - S if col > 0)      for n > 1
    inHn = outH(n-1) (+ K - S if row > 0)
    outWn = (inWn - K)/S + 1,  outHn = (inHn - K)/S + 1

These are the paper's equations as printed. The functional executor
derives its schedule differently (backward boundary tables with border
clamping); the test suite proves the two agree *everywhere* for
padding-free fused groups, and at every interior position's tile sizes
for padded ones. For padded groups the literal formulas' load origins
drift by the accumulated padding (each pad layer absorbs part of the
first tile at the map border — a detail the paper's equations omit and
its hardware must fold into the load offsets); the boundary-table
schedule is the border-exact form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..nn.shapes import ShapeError
from ..nn.stages import Level
from .pyramid import PyramidGeometry, build_pyramid


@dataclass(frozen=True)
class LayerTileParams:
    """One layer's tile dimensions for one pyramid position."""

    level_name: str
    in_h: int
    in_w: int
    out_h: int
    out_w: int


@dataclass(frozen=True)
class PositionParams:
    """Everything calcparams produces for one (row, col)."""

    row: int
    col: int
    rowt: int  # DRAM load origin (padded input coordinates)
    colt: int
    load_h: int  # fresh input rows/cols to load (inH1/inW1)
    load_w: int
    layers: Tuple[LayerTileParams, ...]


class FusedSchedule:
    """Design-time calcparams configuration for a fused group."""

    def __init__(self, levels: Sequence[Level], tip_h: int = 1, tip_w: int = 1):
        self.levels = list(levels)
        if not self.levels:
            raise ShapeError("cannot schedule zero levels")
        self.geometry: PyramidGeometry = build_pyramid(self.levels, tip_h, tip_w)
        base = self.geometry.tiles[0]
        #: Pyramid base dimensions and strides (the paper's X, Y, Sx, Sy).
        self.X = base.in_w
        self.Y = base.in_h
        self.Sx = base.step_w
        self.Sy = base.step_h
        self.rows, self.cols = self.geometry.num_positions

    def position(self, row: int, col: int) -> PositionParams:
        """Apply the Section IV-B equations at one pyramid position."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ShapeError(f"position ({row},{col}) outside "
                             f"{self.rows}x{self.cols} grid")
        first = self.levels[0]
        k1, s1 = first.kernel, first.stride
        rowt = 0 if row == 0 else self.Y + (row - 1) * self.Sy - (k1 - s1)
        colt = 0 if col == 0 else self.X + (col - 1) * self.Sx - (k1 - s1)

        layers: List[LayerTileParams] = []
        prev_out_h = prev_out_w = 0
        load_h = load_w = 0
        for n, level in enumerate(self.levels, start=1):
            k, s = level.kernel, level.stride
            if n == 1:
                in_h = self.Y if row == 0 else self.Sy + k - s
                in_w = self.X if col == 0 else self.Sx + k - s
                load_h, load_w = in_h, in_w
            else:
                in_h = prev_out_h + (k - s if row > 0 else 0)
                in_w = prev_out_w + (k - s if col > 0 else 0)
            if (in_h - k) % s or (in_w - k) % s or in_h < k or in_w < k:
                raise ShapeError(
                    f"{level.name}: tile {in_h}x{in_w} incompatible with "
                    f"K={k}, S={s} at position ({row},{col})"
                )
            out_h = (in_h - k) // s + 1
            out_w = (in_w - k) // s + 1
            layers.append(LayerTileParams(level.name, in_h, in_w, out_h, out_w))
            prev_out_h, prev_out_w = out_h, out_w
        return PositionParams(row=row, col=col, rowt=rowt, colt=colt,
                              load_h=load_h, load_w=load_w, layers=tuple(layers))

    def steady_state(self) -> PositionParams:
        """The interior-position parameters (row > 0, col > 0)."""
        if self.rows < 2 or self.cols < 2:
            return self.position(self.rows - 1, self.cols - 1)
        return self.position(1, 1)

    def total_load_words(self) -> int:
        """DRAM words loaded over all positions, per the load dimensions.

        The load covers the *padded* input frame (the accelerator's
        padding stage synthesizes border zeros, so actual DRAM traffic is
        slightly lower at the edges; this count is the schedule's upper
        bound used for buffer provisioning).
        """
        channels = self.levels[0].in_channels
        total = 0
        for row in range(self.rows):
            for col in range(self.cols):
                params = self.position(row, col)
                total += params.load_h * params.load_w * channels
        return total
