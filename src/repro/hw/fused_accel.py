"""The fused-layer accelerator model (Section IV-B).

One compute module per fused layer, pipelined across pyramids (Figure 6).
Each conv module ``i`` has its own unroll factors ``(Tm_i, Tn_i)``; the
design-space exploration picks them to balance the pipeline — "We select
the option that has the minimal cycle count difference across all
layers" — under the DSP constraint::

    sum_i Tm_i * Tn_i * (DSPadd + DSPmul) <= available DSPs

Per-pyramid stage latency uses the paper's cycle formula applied to the
steady-state fresh tile each pyramid contributes at that layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence, Tuple

from ..core.costs import reuse_buffer_plans
from ..errors import ConfigError
from ..core.pyramid import PyramidGeometry, build_pyramid
from ..nn.shapes import BYTES_PER_WORD
from ..nn.stages import Level
from .device import DSP_PER_MAC, VIRTEX7_690T, FpgaDevice
from .pipeline import StageTiming, analytic_makespan, simulate_pipeline
from .resources import ResourceEstimate

#: Words the DRAM interface delivers per cycle for the load stage model.
WORDS_PER_CYCLE = 16


@dataclass(frozen=True)
class ModuleConfig:
    """Unroll factors and per-pyramid latency of one conv module."""

    level: Level
    tm: int
    tn: int
    fresh_h: int  # steady-state fresh output tile per pyramid
    fresh_w: int
    cycles: int   # per-pyramid latency of this module

    @property
    def dsp(self) -> int:
        return self.tm * self.tn * DSP_PER_MAC


def module_cycles(level: Level, tm: int, tn: int, fresh_h: int, fresh_w: int) -> int:
    """Section IV-B: Cycles = ceil(M/Tm) * ceil(N/Tn) * outW * outH * K^2.

    Grouped convolutions run once per group over M/g x N/g channels.
    """
    g = level.groups
    return (g * ceil(level.out_channels // g / tm) * ceil(level.in_channels // g / tn)
            * fresh_h * fresh_w * level.kernel * level.kernel)


def _fresh_tiles(levels: Sequence[Level], geometry: PyramidGeometry) -> List[Tuple[int, int]]:
    """Steady-state fresh output tile (h, w) per level: the stride product
    of everything above it times the tip."""
    tiles = []
    for i, level in enumerate(levels):
        tile = geometry.tiles[i]
        tiles.append((tile.step_h // level.stride, tile.step_w // level.stride))
    return tiles


@dataclass(frozen=True)
class FusedDesign:
    """A complete fused accelerator for one group of levels."""

    levels: Tuple[Level, ...]
    modules: Tuple[ModuleConfig, ...]  # conv modules only, in order
    tip_h: int
    tip_w: int
    device: FpgaDevice

    def __post_init__(self) -> None:
        if not self.modules:
            raise ConfigError("a fused design needs at least one conv module")

    @property
    def geometry(self) -> PyramidGeometry:
        return build_pyramid(self.levels, self.tip_h, self.tip_w)

    @property
    def num_pyramids(self) -> int:
        rows, cols = self.geometry.num_positions
        return rows * cols

    @property
    def dsp(self) -> int:
        return sum(module.dsp for module in self.modules) + self._control_dsp()

    def _control_dsp(self) -> int:
        # calcparams / address-generation arithmetic: a small per-stage tax
        # (the paper notes "a minor increase in DSP slices (due to the
        # additional control logic)").
        return 16 * len(self.stage_timings())

    def stage_timings(self) -> List[StageTiming]:
        """Per-pyramid pipeline stages: load, conv modules, pool stages."""
        geometry = self.geometry
        fresh = _fresh_tiles(self.levels, geometry)
        stages: List[StageTiming] = []
        base = geometry.tiles[0]
        load_words = base.new_in_h * base.new_in_w * self.levels[0].in_channels
        stages.append(StageTiming("load", ceil(load_words / WORDS_PER_CYCLE)))
        conv_iter = iter(self.modules)
        for i, level in enumerate(self.levels):
            if level.is_conv:
                module = next(conv_iter)
                stages.append(StageTiming(level.name, module.cycles))
            else:
                h, w = fresh[i]
                pool_cycles = h * w * level.out_channels * level.kernel * level.kernel
                stages.append(StageTiming(level.name, ceil(pool_cycles / WORDS_PER_CYCLE)))
        out = self.levels[-1].out_shape
        store_words = self.tip_h * self.tip_w * out.channels
        stages.append(StageTiming("store", ceil(store_words / WORDS_PER_CYCLE)))
        return stages

    @property
    def total_cycles(self) -> int:
        """Makespan of pipelining every pyramid through the stages."""
        return analytic_makespan(self.stage_timings(), self.num_pyramids)

    def simulate_cycles(self) -> int:
        """Event-driven cross-check of :attr:`total_cycles`."""
        return simulate_pipeline(self.stage_timings(), self.num_pyramids).makespan

    def cycles_for_images(self, num_images: int) -> int:
        """Makespan for a stream of images processed back to back.

        Consecutive images' pyramids flow through the same pipeline, so
        the fill cost is paid once and amortized across the batch.
        """
        if num_images < 0:
            raise ConfigError("num_images must be non-negative")
        return analytic_makespan(self.stage_timings(),
                                 self.num_pyramids * num_images)

    def images_per_second(self, frequency_hz: float) -> float:
        """Steady-state throughput at a clock frequency."""
        stages = self.stage_timings()
        interval = max(stage.cycles for stage in stages) * self.num_pyramids
        return frequency_hz / interval

    @property
    def cycle_imbalance(self) -> int:
        """Max - min conv-module latency (the balance objective)."""
        cycles = [module.cycles for module in self.modules]
        return max(cycles) - min(cycles)

    @property
    def transfer_bytes(self) -> int:
        """Input read once, final output written once, weights once."""
        first, last = self.levels[0], self.levels[-1]
        weights = sum(level.weight_count for level in self.levels)
        return (first.in_shape.elements + last.out_shape.elements + weights) * BYTES_PER_WORD

    @property
    def feature_transfer_bytes(self) -> int:
        first, last = self.levels[0], self.levels[-1]
        return (first.in_shape.elements + last.out_shape.elements) * BYTES_PER_WORD

    def resources(self) -> ResourceEstimate:
        """BRAM/LUT/FF estimate: per-module window and output tiles
        (ping-pong between pipeline stages), BL/BT reuse buffers, and all
        weights resident on chip."""
        est = ResourceEstimate(
            mac_lanes=sum(m.tm * m.tn for m in self.modules),
            extra_dsp=self._control_dsp(),
            control_complexity=len(self.stage_timings()),
        )
        geometry = self.geometry
        conv_iter = iter(self.modules)
        for i, level in enumerate(self.levels):
            tile = geometry.tiles[i]
            window_words = tile.in_h * tile.in_w * level.in_channels
            if level.is_conv:
                module = next(conv_iter)
                est.add_buffer(f"in[{level.name}]", window_words,
                               banks=module.tn, double_buffered=True)
                est.add_buffer(f"weights[{level.name}]", level.weight_count,
                               banks=module.tm)
            else:
                est.add_buffer(f"in[{level.name}]", window_words, double_buffered=True)
        for plan in reuse_buffer_plans(self.levels, self.tip_h, self.tip_w,
                                       include_input_level=True):
            est.add_buffer(f"BL[{plan.consumer_name}]", plan.bl_elements)
            est.add_buffer(f"BT[{plan.consumer_name}]", plan.bt_elements)
        out = self.levels[-1].out_shape
        est.add_buffer("store", self.tip_h * self.tip_w * out.channels,
                       double_buffered=True)
        return est


def optimize_fused(levels: Sequence[Level], dsp_budget: int,
                   device: FpgaDevice = VIRTEX7_690T,
                   tip_h: int = 1, tip_w: int = 1,
                   check_fits: bool = False) -> FusedDesign:
    """Pick per-module (Tm, Tn) to balance the pipeline under the budget.

    For every candidate steady-state latency T (drawn from each module's
    achievable latencies), each conv module takes its cheapest-DSP config
    with latency <= T; the feasible T minimizing (T, imbalance, DSP) wins.
    All ties break deterministically: per module toward the
    lexicographically smallest (Tm, Tn) among equal-DSP configs, and
    across targets toward the design with the lexicographically smallest
    per-module (Tm, Tn) sequence — so equal-cycle allocations never
    depend on enumeration order.

    With ``check_fits=True`` the winning design is also validated against
    the device's BRAM/LUT/FF capacity (weights must stay resident for the
    whole group — the constraint that limits fusion depth); an oversize
    design raises ``ValueError`` naming the exhausted resource.
    """
    levels = tuple(levels)
    geometry = build_pyramid(levels, tip_h, tip_w)
    fresh = _fresh_tiles(levels, geometry)
    conv_indices = [i for i, level in enumerate(levels) if level.is_conv]
    if not conv_indices:
        raise ConfigError("fused group has no convolutional levels")

    control_tax = 16 * (len(levels) + 2)
    lane_budget = (dsp_budget - control_tax) // DSP_PER_MAC
    if lane_budget < len(conv_indices):
        raise ConfigError(f"DSP budget {dsp_budget} too small for {len(conv_indices)} modules",
                          dsp_budget=dsp_budget, modules=len(conv_indices))

    candidates: List[List[ModuleConfig]] = []
    for i in conv_indices:
        level = levels[i]
        h, w = fresh[i]
        options: List[ModuleConfig] = []
        for tm in _divisor_like(level.out_channels // level.groups, lane_budget):
            for tn in _divisor_like(level.in_channels // level.groups,
                                    lane_budget // max(tm, 1)):
                cycles = module_cycles(level, tm, tn, h, w)
                options.append(ModuleConfig(level=level, tm=tm, tn=tn,
                                            fresh_h=h, fresh_w=w, cycles=cycles))
        # Pareto-prune: keep only configs where fewer lanes never means
        # fewer cycles. The (tm, tn) tail makes the order — and hence
        # the surviving config for each (cycles, dsp) — deterministic.
        options.sort(key=lambda m: (m.cycles, m.dsp, m.tm, m.tn))
        pruned: List[ModuleConfig] = []
        best_dsp = None
        for option in options:
            if best_dsp is None or option.dsp < best_dsp:
                pruned.append(option)
                best_dsp = option.dsp
        candidates.append(pruned)

    targets = sorted({option.cycles for options in candidates for option in options})
    best: Optional[Tuple[tuple, List[ModuleConfig]]] = None
    for target in targets:
        picks: List[ModuleConfig] = []
        feasible = True
        for options in candidates:
            usable = [o for o in options if o.cycles <= target]
            if not usable:
                feasible = False
                break
            # Equal-DSP ties break lexicographically on (tm, tn), so the
            # chosen shape never depends on candidate enumeration order.
            picks.append(min(usable, key=lambda m: (m.dsp, m.tm, m.tn)))
        if not feasible:
            continue
        lanes = sum(p.tm * p.tn for p in picks)
        if lanes > lane_budget:
            continue
        slowest = max(p.cycles for p in picks)
        imbalance = slowest - min(p.cycles for p in picks)
        key = (slowest, imbalance, lanes,
               tuple((p.tm, p.tn) for p in picks))
        if best is None or key < best[0]:
            best = (key, picks)
    if best is None:
        raise ConfigError(f"no feasible fused design within {dsp_budget} DSPs",
                         dsp_budget=dsp_budget)
    design = FusedDesign(levels=levels, modules=tuple(best[1]),
                         tip_h=tip_h, tip_w=tip_w, device=device)
    if check_fits:
        resources = design.resources()
        for label, used, avail in (
            ("BRAM18", resources.bram18, device.bram18),
            ("LUTs", resources.luts, device.luts),
            ("FFs", resources.ffs, device.ffs),
        ):
            if used > avail:
                raise ConfigError(
                    f"fused design needs {used} {label} but {device.name} has "
                    f"{avail}; fuse fewer layers (weights and windows must "
                    f"stay resident for the whole group)"
                )
    return design


def _divisor_like(n: int, cap: int) -> List[int]:
    """Candidate unroll factors for a loop of trip count ``n``: divisors
    and near-divisors up to ``cap`` (HLS designs favor factors that avoid
    ragged final iterations)."""
    if cap < 1:
        return []
    values = {v for v in range(1, min(n, cap) + 1) if n % v == 0}
    for v in (2, 3, 4, 6, 7, 8, 12, 14, 16, 24, 28, 32, 48, 64, 96, 128):
        if v <= min(n, cap):
            values.add(v)
    return sorted(values)
