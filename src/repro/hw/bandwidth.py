"""DRAM bandwidth modeling: when does memory become the bottleneck?

The paper motivates fusion by bandwidth: "Data transfer values can be
converted to bandwidth by multiplying by the target throughput. For
example, if an accelerator targets 50 images/second, and the graph shows
an off-chip transfer of 100MB, this would require 5 GB/sec. bandwidth"
(footnote 4). This module provides that conversion plus a roofline-style
performance model: with double buffering, compute and transfer overlap,
so effective time per image is ``max(compute_cycles, transfer_cycles)``.
Sweeping available bandwidth locates the crossover where the baseline
design becomes memory-bound while the fused design keeps streaming.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence

from ..errors import ConfigError


def required_bandwidth_bytes_per_sec(transfer_bytes_per_image: int,
                                     images_per_second: float) -> float:
    """Footnote 4: sustained DRAM bandwidth for a target frame rate."""
    if images_per_second < 0:
        raise ConfigError("images_per_second must be non-negative",
                          images_per_second=images_per_second)
    return transfer_bytes_per_image * images_per_second


def effective_words_per_cycle(base: float, cycle: int,
                              faults: Optional[object] = None) -> float:
    """Channel throughput at simulated time ``cycle``.

    The nominal ``base`` words/cycle, scaled by an injected
    ``bandwidth_degrade`` fault when a
    :class:`~repro.faults.injector.FaultInjector` is supplied (the
    FPGA-review observation that sustained DRAM bandwidth sags below the
    datasheet number under real access patterns). Duck-typed so this
    module never imports :mod:`repro.faults`.
    """
    if base <= 0:
        raise ConfigError("words_per_cycle must be positive", base=base)
    if faults is None:
        return base
    return base * faults.bandwidth_factor(cycle)


@dataclass(frozen=True)
class EffectivePerformance:
    """A design's throughput under a finite memory system."""

    compute_cycles: int
    transfer_cycles: int
    bytes_per_cycle: float

    @property
    def effective_cycles(self) -> int:
        """Per-image latency with transfer fully overlapped (double
        buffering): whichever of compute or transfer dominates."""
        return max(self.compute_cycles, self.transfer_cycles)

    @property
    def bound(self) -> str:
        return "memory" if self.transfer_cycles > self.compute_cycles else "compute"

    @property
    def compute_utilization(self) -> float:
        """Fraction of time the arithmetic units stay busy."""
        if self.effective_cycles == 0:
            return 1.0
        return self.compute_cycles / self.effective_cycles

    def images_per_second(self, frequency_hz: float) -> float:
        if self.effective_cycles == 0:
            return float("inf")
        return frequency_hz / self.effective_cycles


def performance_under_bandwidth(compute_cycles: int, transfer_bytes: int,
                                bytes_per_cycle: float) -> EffectivePerformance:
    """Roofline point for one design at one memory bandwidth.

    ``bytes_per_cycle`` is the DRAM interface width at the accelerator
    clock (e.g. a 100 MHz design on a 12.8 GB/s DDR3 channel sees 128
    bytes/cycle).
    """
    if bytes_per_cycle <= 0:
        raise ConfigError("bytes_per_cycle must be positive",
                          bytes_per_cycle=bytes_per_cycle)
    return EffectivePerformance(
        compute_cycles=compute_cycles,
        transfer_cycles=ceil(transfer_bytes / bytes_per_cycle),
        bytes_per_cycle=bytes_per_cycle,
    )


@dataclass(frozen=True)
class SweepPoint:
    """Fused and baseline effective cycles at one memory bandwidth."""

    bytes_per_cycle: float
    fused_cycles: int
    baseline_cycles: int

    @property
    def speedup(self) -> float:
        """Fused over baseline (>1 means fused is faster)."""
        return self.baseline_cycles / self.fused_cycles


def bandwidth_sweep(fused_compute: int, fused_bytes: int,
                    baseline_compute: int, baseline_bytes: int,
                    bandwidths: Sequence[float]) -> List[SweepPoint]:
    """Effective per-image cycles of both designs across bandwidths."""
    points = []
    for bw in bandwidths:
        fused = performance_under_bandwidth(fused_compute, fused_bytes, bw)
        base = performance_under_bandwidth(baseline_compute, baseline_bytes, bw)
        points.append(SweepPoint(bytes_per_cycle=bw,
                                 fused_cycles=fused.effective_cycles,
                                 baseline_cycles=base.effective_cycles))
    return points


def memory_bound_threshold(compute_cycles: int, transfer_bytes: int) -> float:
    """Bandwidth (bytes/cycle) below which a design is memory-bound."""
    if compute_cycles <= 0:
        raise ConfigError("compute_cycles must be positive",
                          compute_cycles=compute_cycles)
    return transfer_bytes / compute_cycles
