"""Arithmetic-precision variants of the fused/baseline designs.

The paper fixes single-precision floating point "for ease of comparison
with prior work" (Section VI-A); its DSP costs (3 per multiplier, 2 per
adder) and all transfer numbers follow from that choice. Precision is
the obvious free knob: fp16 halves every feature-map byte and reuse
buffer and fits MACs in fewer DSP slices; int16 maps one MAC per DSP48E1
(its native 25x18 multiplier).

The core models stay in fp32 words; this module rescales their outputs
for a chosen precision — valid because the *element counts* (transfers,
buffer entries, MAC lanes needed) are precision-independent, only bytes
per element and DSP slices per lane change.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..nn.shapes import BYTES_PER_WORD
from ..errors import ConfigError


@dataclass(frozen=True)
class Precision:
    """One arithmetic format: storage width and DSP cost per MAC lane."""

    name: str
    bytes_per_word: int
    dsp_per_mul: int
    dsp_per_add: int

    def __post_init__(self) -> None:
        if self.bytes_per_word <= 0:
            raise ConfigError(f"{self.name}: bytes_per_word must be positive")
        if self.dsp_per_mul < 0 or self.dsp_per_add < 0:
            raise ConfigError(f"{self.name}: DSP costs must be non-negative")

    @property
    def dsp_per_mac(self) -> int:
        return self.dsp_per_mul + self.dsp_per_add


#: The paper's configuration (Section IV-B).
FP32 = Precision("fp32", bytes_per_word=4, dsp_per_mul=3, dsp_per_add=2)
#: Half precision: half the bytes, two DSPs per fused multiply-add.
FP16 = Precision("fp16", bytes_per_word=2, dsp_per_mul=1, dsp_per_add=1)
#: 16-bit fixed point: one DSP48E1 does a full multiply-accumulate.
INT16 = Precision("int16", bytes_per_word=2, dsp_per_mul=1, dsp_per_add=0)


def scale_bytes(fp32_bytes: int, precision: Precision) -> int:
    """Rescale an fp32-word byte count to another precision."""
    words = fp32_bytes / BYTES_PER_WORD
    return ceil(words * precision.bytes_per_word)


def equivalent_dsp_budget(fp32_budget: int, precision: Precision) -> int:
    """The precision's DSP budget hosting the same number of MAC lanes a
    given fp32 budget hosts (iso-parallelism comparison)."""
    lanes = fp32_budget // FP32.dsp_per_mac
    return lanes * precision.dsp_per_mac


@dataclass(frozen=True)
class PrecisionSummary:
    """A design's headline numbers rescaled to one precision."""

    precision: Precision
    feature_transfer_bytes: int
    reuse_storage_bytes: int
    dsp_for_same_lanes: int

    @property
    def transfer_mb(self) -> float:
        return self.feature_transfer_bytes / 2 ** 20

    @property
    def storage_kb(self) -> float:
        return self.reuse_storage_bytes / 2 ** 10


def precision_summary(feature_transfer_fp32: int, reuse_storage_fp32: int,
                      fp32_dsp: int, precision: Precision) -> PrecisionSummary:
    """Rescale a design's transfer/storage/DSP to another precision."""
    return PrecisionSummary(
        precision=precision,
        feature_transfer_bytes=scale_bytes(feature_transfer_fp32, precision),
        reuse_storage_bytes=scale_bytes(reuse_storage_fp32, precision),
        dsp_for_same_lanes=equivalent_dsp_budget(fp32_dsp, precision),
    )
