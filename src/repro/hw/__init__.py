"""Hardware models: baseline and fused FPGA accelerators, resources, HLS."""

from .bandwidth import (
    EffectivePerformance,
    SweepPoint,
    bandwidth_sweep,
    effective_words_per_cycle,
    memory_bound_threshold,
    performance_under_bandwidth,
    required_bandwidth_bytes_per_sec,
)
from .baseline import (
    BaselineDesign,
    ConvStage,
    StageCost,
    group_stages,
    optimize_baseline,
    stage_cost,
)
from .codegen import generate_standalone
from .device import (
    DEFAULT_DEVICE,
    DSP_PER_ADD,
    DSP_PER_MAC,
    DSP_PER_MUL,
    VIRTEX7_485T,
    VIRTEX7_690T,
    DeviceSpec,
    FpgaDevice,
    replicate_device,
    split_device,
)
from .link import DEFAULT_LINK, LinkSpec
from .energy import EnergyBreakdown, EnergyModel, estimate_energy
from .fused_accel import FusedDesign, ModuleConfig, module_cycles, optimize_fused
from .memory_sim import ChannelSchedule, ComputeStage, MemStage, fused_design_stages, simulate_with_channel
from .multi import PartitionDesign, PoolEngine, design_partition
from .hls import generate_baseline, generate_compute_module, generate_fused
from .precision import FP16, FP32, INT16, Precision, equivalent_dsp_budget, precision_summary, scale_bytes
from .pipeline import PipelineSchedule, StageTiming, analytic_makespan, simulate_pipeline
from .resources import BufferSpec, ResourceEstimate

__all__ = [
    "BaselineDesign",
    "EffectivePerformance",
    "EnergyBreakdown",
    "EnergyModel",
    "SweepPoint",
    "bandwidth_sweep",
    "effective_words_per_cycle",
    "equivalent_dsp_budget",
    "estimate_energy",
    "memory_bound_threshold",
    "performance_under_bandwidth",
    "required_bandwidth_bytes_per_sec",
    "BufferSpec",
    "ChannelSchedule",
    "ComputeStage",
    "ConvStage",
    "DEFAULT_DEVICE",
    "DEFAULT_LINK",
    "DeviceSpec",
    "LinkSpec",
    "replicate_device",
    "split_device",
    "DSP_PER_ADD",
    "DSP_PER_MAC",
    "DSP_PER_MUL",
    "FP16",
    "FP32",
    "FpgaDevice",
    "INT16",
    "FusedDesign",
    "MemStage",
    "ModuleConfig",
    "PartitionDesign",
    "PoolEngine",
    "PipelineSchedule",
    "Precision",
    "ResourceEstimate",
    "StageCost",
    "StageTiming",
    "VIRTEX7_485T",
    "VIRTEX7_690T",
    "analytic_makespan",
    "design_partition",
    "generate_baseline",
    "generate_compute_module",
    "generate_standalone",
    "fused_design_stages",
    "generate_fused",
    "group_stages",
    "module_cycles",
    "optimize_baseline",
    "optimize_fused",
    "precision_summary",
    "scale_bytes",
    "simulate_pipeline",
    "simulate_with_channel",
    "stage_cost",
]
