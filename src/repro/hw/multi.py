"""Multi-pyramid accelerators: hardware for an arbitrary fusion partition.

Figure 4 contrasts fusing all layers into a single pyramid against
decomposing them into several pyramids with a DRAM round-trip between
them. This module builds the hardware view of any partition the
exploration tool scores: one fused engine per group, the DSP budget
split across groups in proportion to their arithmetic, with the
boundary feature maps staged through DRAM.

Per-image latency sums the groups (group i+1 needs group i's full
output); streaming throughput pipelines groups across consecutive
images, so the slowest group sets the interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import ConfigError
from ..nn.stages import Level
from .device import VIRTEX7_690T, FpgaDevice
from .fused_accel import FusedDesign, optimize_fused
from .resources import ResourceEstimate

#: Pool-engine throughput for pool-only groups (window values per cycle).
_POOL_WORDS_PER_CYCLE = 16


@dataclass(frozen=True)
class PoolEngine:
    """A stand-alone engine for a group containing no convolutions."""

    levels: Tuple[Level, ...]

    @property
    def total_cycles(self) -> int:
        ops = sum(
            level.out_shape.elements * level.kernel * level.kernel
            for level in self.levels
        )
        return ceil(ops / _POOL_WORDS_PER_CYCLE)

    @property
    def dsp(self) -> int:
        return 0

    def resources(self) -> ResourceEstimate:
        est = ResourceEstimate(control_complexity=len(self.levels))
        for level in self.levels:
            est.add_buffer(f"line[{level.name}]",
                           level.kernel * level.in_shape.width * level.in_channels)
        return est


GroupEngine = Union[FusedDesign, PoolEngine]


@dataclass(frozen=True)
class PartitionDesign:
    """Hardware realization of one fusion partition."""

    engines: Tuple[GroupEngine, ...]
    sizes: Tuple[int, ...]
    device: FpgaDevice

    @property
    def latency_cycles(self) -> int:
        """Per-image latency: groups run back to back."""
        return sum(engine.total_cycles for engine in self.engines)

    @property
    def throughput_interval(self) -> int:
        """Streaming interval: groups pipelined across images."""
        return max(engine.total_cycles for engine in self.engines)

    @property
    def dsp(self) -> int:
        return sum(engine.dsp for engine in self.engines)

    @property
    def feature_transfer_bytes(self) -> int:
        """Network input + output, plus each boundary map twice."""
        levels = [level for engine in self.engines for level in engine.levels]
        total = levels[0].in_shape.bytes + levels[-1].out_shape.bytes
        offset = 0
        for engine in self.engines[:-1]:
            offset += len(engine.levels)
            total += 2 * levels[offset - 1].out_shape.bytes
        return total

    def resources(self) -> ResourceEstimate:
        merged = ResourceEstimate()
        for engine in self.engines:
            est = engine.resources()
            merged.buffers.extend(est.buffers)
            merged.mac_lanes += est.mac_lanes
            merged.extra_dsp += est.extra_dsp
            merged.control_complexity += est.control_complexity
        return merged


def design_partition(levels: Sequence[Level], sizes: Sequence[int],
                     dsp_budget: int, device: FpgaDevice = VIRTEX7_690T,
                     tip_h: int = 1, tip_w: int = 1) -> PartitionDesign:
    """Build one engine per group, splitting the DSP budget by work.

    Groups without convolutions become :class:`PoolEngine`; conv groups
    get a fused engine sized to a share of the budget proportional to
    their arithmetic (with a floor large enough to be feasible).
    """
    if sum(sizes) != len(levels):
        raise ConfigError(f"sizes {tuple(sizes)} do not cover {len(levels)} levels",
                          sizes=tuple(sizes), levels=len(levels))
    groups: List[List[Level]] = []
    start = 0
    for size in sizes:
        if size <= 0:
            raise ConfigError("group sizes must be positive", sizes=tuple(sizes))
        groups.append(list(levels[start:start + size]))
        start += size

    work = [sum(level.total_ops for level in group if level.is_conv)
            for group in groups]
    total_work = sum(work) or 1
    # Split the budget: every conv group gets a floor big enough to
    # instantiate its modules; the remainder is distributed by work so
    # the engine shares sum to at most the budget.
    floors = [400 * sum(1 for level in group if level.is_conv)
              for group in groups]
    floor_total = sum(floors)
    if floor_total > dsp_budget:
        raise ConfigError(
            f"DSP budget {dsp_budget} cannot host {len(groups)} engines "
            f"(needs at least {floor_total})"
        )
    spare = dsp_budget - floor_total
    shares = [floor + int(spare * group_work / total_work)
              for floor, group_work in zip(floors, work)]

    engines: List[GroupEngine] = []
    for group, share in zip(groups, shares):
        if not any(level.is_conv for level in group):
            engines.append(PoolEngine(levels=tuple(group)))
            continue
        final = group[-1].out_shape
        engines.append(
            optimize_fused(group, dsp_budget=share, device=device,
                           tip_h=min(tip_h, final.height),
                           tip_w=min(tip_w, final.width))
        )
    return PartitionDesign(engines=tuple(engines), sizes=tuple(sizes), device=device)
