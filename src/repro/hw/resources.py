"""On-chip memory and logic resource estimation.

BRAM accounting follows the banked-buffer style of the HLS designs: an
on-chip array that must feed ``banks`` parallel lanes is partitioned into
``banks`` independent memories, each rounded up to whole BRAM18s.
Double-buffered arrays (ping-pong for overlapping transfer with compute)
cost twice their capacity.

LUT/FF counts come from a coarse linear model fitted to the scale of the
paper's Table I (they cannot be predicted exactly without running the HLS
tool; the model preserves the *relative* cost of the fused design's extra
control logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import List

from ..errors import ConfigError
from .device import DSP_PER_MAC, WORDS_PER_BRAM18


@dataclass(frozen=True)
class BufferSpec:
    """One on-chip memory: ``words`` elements across ``banks`` partitions."""

    name: str
    words: int
    banks: int = 1
    double_buffered: bool = False

    def __post_init__(self) -> None:
        if self.words < 0 or self.banks <= 0:
            raise ConfigError(f"invalid buffer spec {self!r}")

    @property
    def bram18(self) -> int:
        """BRAM18 blocks consumed by this buffer."""
        if self.words == 0:
            return 0
        per_bank = ceil(self.words / self.banks)
        blocks = self.banks * ceil(per_bank / WORDS_PER_BRAM18)
        return blocks * (2 if self.double_buffered else 1)

    @property
    def bytes(self) -> int:
        words = self.words * (2 if self.double_buffered else 1)
        return words * 4


@dataclass
class ResourceEstimate:
    """Aggregate FPGA resource usage of one accelerator design."""

    buffers: List[BufferSpec] = field(default_factory=list)
    mac_lanes: int = 0
    extra_dsp: int = 0
    control_complexity: int = 1  # number of distinct pipeline stages

    def add_buffer(self, name: str, words: int, banks: int = 1,
                   double_buffered: bool = False) -> None:
        self.buffers.append(BufferSpec(name, words, banks, double_buffered))

    @property
    def bram18(self) -> int:
        return sum(buffer.bram18 for buffer in self.buffers)

    @property
    def buffer_bytes(self) -> int:
        return sum(buffer.bytes for buffer in self.buffers)

    @property
    def dsp(self) -> int:
        return self.mac_lanes * DSP_PER_MAC + self.extra_dsp

    # LUT/FF linear model: each MAC lane brings datapath plumbing, each
    # pipeline stage brings a control FSM, each buffer brings address
    # generation. Coefficients chosen so the baseline AlexNet design of
    # Table I lands near [19]'s reported 186K LUTs / 206K FFs.
    _LUT_PER_LANE = 380
    _FF_PER_LANE = 420
    _LUT_PER_STAGE = 6_000
    _FF_PER_STAGE = 7_000
    _LUT_PER_BUFFER = 220
    _FF_PER_BUFFER = 260

    @property
    def luts(self) -> int:
        return (self.mac_lanes * self._LUT_PER_LANE
                + self.control_complexity * self._LUT_PER_STAGE
                + len(self.buffers) * self._LUT_PER_BUFFER)

    @property
    def ffs(self) -> int:
        return (self.mac_lanes * self._FF_PER_LANE
                + self.control_complexity * self._FF_PER_STAGE
                + len(self.buffers) * self._FF_PER_BUFFER)

    def fits(self, device) -> bool:
        """Whether the estimate fits a :class:`~repro.hw.device.FpgaDevice`."""
        return (self.dsp <= device.dsp_slices and self.bram18 <= device.bram18
                and self.luts <= device.luts and self.ffs <= device.ffs)


def weights_fit_on_chip(levels, device, reserve_fraction: float = 0.5) -> bool:
    """Whether a fused group's weights can stay resident on chip.

    The fused accelerator "assumes all filter weights are stored on chip"
    (Section III-A footnote) — true for early layers, and the reason the
    paper targets them: late-layer weights are tens of MB. ``reserve_
    fraction`` of BRAM is kept for feature-map windows and reuse buffers.
    """
    if not 0 <= reserve_fraction < 1:
        raise ConfigError("reserve_fraction must be in [0, 1)")
    weight_words = sum(level.weight_count for level in levels)
    budget_words = int(device.bram18 * WORDS_PER_BRAM18 * (1 - reserve_fraction))
    return weight_words <= budget_words
