"""Event-driven simulation of the pipeline with a shared DRAM channel.

The analytic roofline (:mod:`repro.hw.bandwidth`) assumes transfer and
compute overlap perfectly. This simulator checks that assumption: load
and store stages contend for one DRAM channel serving ``bytes_per_cycle``
(one transfer at a time), while compute stages run in parallel as in
:mod:`repro.hw.pipeline`. The simulated makespan is lower-bounded by
both the compute bottleneck and the total-traffic/bandwidth bound, and
converges to the roofline when either dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class MemStage:
    """A stage that moves ``words`` through the shared DRAM channel."""

    name: str
    words: int

    def __post_init__(self) -> None:
        if self.words < 0:
            raise ValueError(f"{self.name}: negative words")


@dataclass(frozen=True)
class ComputeStage:
    """A stage occupying its own hardware for ``cycles``."""

    name: str
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"{self.name}: negative cycles")



@dataclass(frozen=True)
class ChannelSchedule:
    """Result of simulating ``num_items`` with a shared memory channel."""

    makespan: int
    channel_busy: int
    compute_bound: int
    memory_bound: int

    @property
    def channel_utilization(self) -> float:
        return self.channel_busy / self.makespan if self.makespan else 0.0

    @property
    def bound(self) -> str:
        return "memory" if self.memory_bound >= self.compute_bound else "compute"


def simulate_with_channel(stages: Sequence[object], num_items: int,
                          words_per_cycle: float) -> ChannelSchedule:
    """Pipeline ``num_items`` through ``stages`` with one DRAM channel.

    ``stages`` mixes :class:`MemStage` (channel-contending) and
    :class:`ComputeStage`. Within an item, stages run in order; across
    items, each stage (and the channel) serves one item at a time.
    """
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    if words_per_cycle <= 0:
        raise ValueError("words_per_cycle must be positive")

    durations: List[int] = []
    for stage in stages:
        if isinstance(stage, MemStage):
            durations.append(ceil(stage.words / words_per_cycle))
        elif isinstance(stage, ComputeStage):
            durations.append(stage.cycles)
        else:
            raise TypeError(f"unknown stage type: {stage!r}")

    # Discrete-event simulation. Each job (item, stage) becomes ready when
    # the same item clears the previous stage and the stage clears the
    # previous item; memory jobs are then served by the channel first-come-
    # first-served in ready order (a real controller interleaves requests,
    # so the store of item i must not block the load of item i+1 that was
    # issued earlier).
    import heapq

    num_stages = len(stages)
    done_time = [[0] * num_stages for _ in range(num_items)]
    deps_left = [[(1 if s > 0 else 0) + (1 if i > 0 else 0)
                  for s in range(num_stages)] for i in range(num_items)]
    ready_heap: List[Tuple[int, int, int]] = []
    channel_free = 0
    channel_busy = 0
    makespan = 0
    if num_items > 0:
        heapq.heappush(ready_heap, (0, 0, 0))
    completed = 0
    total_jobs = num_items * num_stages
    while completed < total_jobs:
        ready, i, s = heapq.heappop(ready_heap)
        if isinstance(stages[s], MemStage):
            start = max(ready, channel_free)
            channel_free = start + durations[s]
            channel_busy += durations[s]
        else:
            start = ready
        finish = start + durations[s]
        done_time[i][s] = finish
        makespan = max(makespan, finish)
        completed += 1
        for ni, ns in ((i, s + 1), (i + 1, s)):
            if ni < num_items and ns < num_stages:
                deps_left[ni][ns] -= 1
                if deps_left[ni][ns] == 0:
                    job_ready = 0
                    if ns > 0:
                        job_ready = max(job_ready, done_time[ni][ns - 1])
                    if ni > 0:
                        job_ready = max(job_ready, done_time[ni - 1][ns])
                    heapq.heappush(ready_heap, (job_ready, ni, ns))

    total_words = sum(stage.words for stage in stages if isinstance(stage, MemStage))
    memory_bound = ceil(num_items * total_words / words_per_cycle)
    compute_cycles = [d for stage, d in zip(stages, durations)
                      if isinstance(stage, ComputeStage)]
    compute_bound = num_items * max(compute_cycles) if compute_cycles else 0
    return ChannelSchedule(
        makespan=makespan,
        channel_busy=channel_busy,
        compute_bound=compute_bound,
        memory_bound=memory_bound,
    )


def fused_design_stages(design) -> List[object]:
    """Convert a :class:`~repro.hw.fused_accel.FusedDesign` to channel-
    aware stages: its load/store become :class:`MemStage`, everything
    else :class:`ComputeStage`."""
    stages: List[object] = []
    geometry = design.geometry
    base = geometry.tiles[0]
    load_words = base.new_in_h * base.new_in_w * design.levels[0].in_channels
    stages.append(MemStage("load", load_words))
    for timing in design.stage_timings()[1:-1]:
        stages.append(ComputeStage(timing.name, timing.cycles))
    out = design.levels[-1].out_shape
    stages.append(MemStage("store", design.tip_h * design.tip_w * out.channels))
    return stages
