"""Event-driven simulation of the pipeline with a shared DRAM channel.

The analytic roofline (:mod:`repro.hw.bandwidth`) assumes transfer and
compute overlap perfectly. This simulator checks that assumption: load
and store stages contend for one DRAM channel serving ``bytes_per_cycle``
(one transfer at a time), while compute stages run in parallel as in
:mod:`repro.hw.pipeline`. The simulated makespan is lower-bounded by
both the compute bottleneck and the total-traffic/bandwidth bound, and
converges to the roofline when either dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..errors import ConfigError
from ..faults.retry import RetryPolicy
from ..faults.spec import DRAM_STALL
from .bandwidth import effective_words_per_cycle


@dataclass(frozen=True)
class MemStage:
    """A stage that moves ``words`` through the shared DRAM channel."""

    name: str
    words: int

    def __post_init__(self) -> None:
        if self.words < 0:
            raise ConfigError(f"{self.name}: negative words", words=self.words)


@dataclass(frozen=True)
class ComputeStage:
    """A stage occupying its own hardware for ``cycles``."""

    name: str
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ConfigError(f"{self.name}: negative cycles", cycles=self.cycles)



@dataclass(frozen=True)
class ChannelSchedule:
    """Result of simulating ``num_items`` with a shared memory channel.

    ``stalls``/``retries``/``stall_cycles`` tally injected ``dram_stall``
    faults and their repair cost; all zero on a fault-free run.
    """

    makespan: int
    channel_busy: int
    compute_bound: int
    memory_bound: int
    stalls: int = 0
    retries: int = 0
    stall_cycles: int = 0

    @property
    def channel_utilization(self) -> float:
        return self.channel_busy / self.makespan if self.makespan else 0.0

    @property
    def bound(self) -> str:
        return "memory" if self.memory_bound >= self.compute_bound else "compute"


def _serve_transfer(stage: MemStage, item: int, start: int,
                    words_per_cycle: float, faults, retry: RetryPolicy) -> Tuple[int, int, int]:
    """Channel occupancy for one transfer under injected faults.

    Each attempt moves the words at the bandwidth in effect when the
    transfer starts (``bandwidth_degrade``); an attempt that trips
    ``dram_stall`` wastes its duration plus the stall penalty, backs off
    exponentially, and retries — the channel is held throughout, the
    conservative model of a blocked memory controller. Returns ``(busy,
    stalls, stall_cycles)``; raises
    :class:`~repro.errors.SimFaultError` when the retry budget runs out.
    """
    duration = ceil(stage.words / effective_words_per_cycle(
        words_per_cycle, start, faults))
    site = f"channel[{stage.name}]#{item}"
    busy = 0
    stalls = 0
    stall_cycles = 0
    attempt = 1
    while True:
        penalty = faults.transfer_stalls(site)
        if penalty == 0:
            return busy + duration, stalls, stall_cycles
        if attempt >= retry.max_attempts:
            raise retry.exhausted(site, DRAM_STALL, stage=stage.name, item=item)
        backoff = retry.backoff_cycles(attempt)
        faults.record_retry(site, backoff)
        obs.add_counter("faults.stall_cycles", penalty)
        busy += duration + penalty + backoff
        stalls += 1
        stall_cycles += penalty + backoff
        attempt += 1


def simulate_with_channel(stages: Sequence[object], num_items: int,
                          words_per_cycle: float,
                          faults=None,
                          retry: Optional[RetryPolicy] = None) -> ChannelSchedule:
    """Pipeline ``num_items`` through ``stages`` with one DRAM channel.

    ``stages`` mixes :class:`MemStage` (channel-contending) and
    :class:`ComputeStage`. Within an item, stages run in order; across
    items, each stage (and the channel) serves one item at a time.

    ``faults`` (a :class:`~repro.faults.injector.FaultInjector`) subjects
    every transfer to the active plan's ``dram_stall`` and
    ``bandwidth_degrade`` faults, repaired by bounded
    retry-with-exponential-backoff under ``retry`` (default
    :class:`~repro.faults.retry.RetryPolicy`).
    """
    if num_items < 0:
        raise ConfigError("num_items must be non-negative", num_items=num_items)
    if words_per_cycle <= 0:
        raise ConfigError("words_per_cycle must be positive",
                          words_per_cycle=words_per_cycle)
    if faults is not None and retry is None:
        retry = RetryPolicy()

    durations: List[int] = []
    for stage in stages:
        if isinstance(stage, MemStage):
            durations.append(ceil(stage.words / words_per_cycle))
        elif isinstance(stage, ComputeStage):
            durations.append(stage.cycles)
        else:
            raise TypeError(f"unknown stage type: {stage!r}")

    # Discrete-event simulation. Each job (item, stage) becomes ready when
    # the same item clears the previous stage and the stage clears the
    # previous item; memory jobs are then served by the channel first-come-
    # first-served in ready order (a real controller interleaves requests,
    # so the store of item i must not block the load of item i+1 that was
    # issued earlier).
    import heapq

    num_stages = len(stages)
    done_time = [[0] * num_stages for _ in range(num_items)]
    deps_left = [[(1 if s > 0 else 0) + (1 if i > 0 else 0)
                  for s in range(num_stages)] for i in range(num_items)]
    ready_heap: List[Tuple[int, int, int]] = []
    channel_free = 0
    channel_busy = 0
    makespan = 0
    total_stalls = 0
    total_retries = 0
    total_stall_cycles = 0
    if num_items > 0:
        heapq.heappush(ready_heap, (0, 0, 0))
    completed = 0
    total_jobs = num_items * num_stages
    while completed < total_jobs:
        ready, i, s = heapq.heappop(ready_heap)
        stage = stages[s]
        if isinstance(stage, MemStage):
            start = max(ready, channel_free)
            if faults is None:
                occupancy = durations[s]
            else:
                occupancy, stalls, stall_cycles = _serve_transfer(
                    stage, i, start, words_per_cycle, faults, retry)
                total_stalls += stalls
                total_retries += stalls
                total_stall_cycles += stall_cycles
            channel_free = start + occupancy
            channel_busy += occupancy
            finish = start + occupancy
        else:
            start = ready
            finish = start + durations[s]
        done_time[i][s] = finish
        makespan = max(makespan, finish)
        completed += 1
        for ni, ns in ((i, s + 1), (i + 1, s)):
            if ni < num_items and ns < num_stages:
                deps_left[ni][ns] -= 1
                if deps_left[ni][ns] == 0:
                    job_ready = 0
                    if ns > 0:
                        job_ready = max(job_ready, done_time[ni][ns - 1])
                    if ni > 0:
                        job_ready = max(job_ready, done_time[ni - 1][ns])
                    heapq.heappush(ready_heap, (job_ready, ni, ns))

    total_words = sum(stage.words for stage in stages if isinstance(stage, MemStage))
    memory_bound = ceil(num_items * total_words / words_per_cycle)
    compute_cycles = [d for stage, d in zip(stages, durations)
                      if isinstance(stage, ComputeStage)]
    compute_bound = num_items * max(compute_cycles) if compute_cycles else 0
    return ChannelSchedule(
        makespan=makespan,
        channel_busy=channel_busy,
        compute_bound=compute_bound,
        memory_bound=memory_bound,
        stalls=total_stalls,
        retries=total_retries,
        stall_cycles=total_stall_cycles,
    )


def fused_design_stages(design) -> List[object]:
    """Convert a :class:`~repro.hw.fused_accel.FusedDesign` to channel-
    aware stages: its load/store become :class:`MemStage`, everything
    else :class:`ComputeStage`."""
    stages: List[object] = []
    geometry = design.geometry
    base = geometry.tiles[0]
    load_words = base.new_in_h * base.new_in_w * design.levels[0].in_channels
    stages.append(MemStage("load", load_words))
    for timing in design.stage_timings()[1:-1]:
        stages.append(ComputeStage(timing.name, timing.cycles))
    out = design.levels[-1].out_shape
    stages.append(MemStage("store", design.tip_h * design.tip_w * out.channels))
    return stages
