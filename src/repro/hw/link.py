"""Inter-device link model for pipeline-parallel serving.

When fused groups are sharded across devices, the boundary feature maps
that a single-device partition rounds through DRAM instead *stream over
a point-to-point link* to the next device's on-chip buffers. The link
is priced like any serial channel: a fixed per-transfer latency (the
handshake / serialization setup) plus bytes over bandwidth. Activation
tensors are priced at the exact inter-group footprints the partition
analysis already computes — nothing here re-derives geometry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from math import ceil
from typing import Any, Dict


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point inter-device link.

    ``latency_cycles`` is charged once per transfer (per micro-batch
    item crossing the stage boundary); ``bytes_per_cycle`` is the
    sustained streaming rate, in the consumer device's clock domain.
    """

    latency_cycles: int = 500
    bytes_per_cycle: float = 16.0

    def __post_init__(self) -> None:
        from ..errors import ConfigError

        if self.latency_cycles < 0:
            raise ConfigError(
                f"link latency must be >= 0, got {self.latency_cycles}",
                latency_cycles=self.latency_cycles)
        if self.bytes_per_cycle <= 0:
            raise ConfigError(
                f"link bandwidth must be > 0, got {self.bytes_per_cycle}",
                bytes_per_cycle=self.bytes_per_cycle)

    def transfer_cycles(self, num_bytes: int) -> int:
        """Cycles to move ``num_bytes`` across the link (0 bytes is free:
        no transfer happens, so no handshake either)."""
        if num_bytes <= 0:
            return 0
        return self.latency_cycles + ceil(num_bytes / self.bytes_per_cycle)

    def to_dict(self) -> Dict[str, Any]:
        return {"latency_cycles": self.latency_cycles,
                "bytes_per_cycle": self.bytes_per_cycle}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LinkSpec":
        return cls(latency_cycles=int(data["latency_cycles"]),
                   bytes_per_cycle=float(data["bytes_per_cycle"]))

    def fingerprint(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:12]


#: The default link: wide enough that a balanced pipeline is rarely
#: link-bound, with a latency that still punishes chatty partitions.
DEFAULT_LINK = LinkSpec(latency_cycles=500, bytes_per_cycle=16.0)
