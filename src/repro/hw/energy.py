"""Energy model for data movement and arithmetic.

The paper's second motivation: "This transfer of feature map data to and
from external memory is costly in terms of memory bandwidth and energy."
This model quantifies it with the widely used 45 nm numbers from
Horowitz (ISSCC 2014): a 32-bit DRAM access costs ~640 pJ — two orders
of magnitude more than an on-chip SRAM read (~5 pJ) or an fp32 multiply
(~3.7 pJ). Layer fusion converts DRAM traffic into SRAM traffic, which
is where its energy win comes from.

All constants are configurable; defaults are per 32-bit word.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.shapes import BYTES_PER_WORD


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy in picojoules (45 nm defaults, Horowitz '14)."""

    dram_access_pj: float = 640.0   # 32-bit off-chip read or write
    sram_access_pj: float = 5.0     # 32-bit on-chip buffer access
    fp_mul_pj: float = 3.7
    fp_add_pj: float = 0.9

    def dram_energy_j(self, transfer_bytes: int) -> float:
        words = transfer_bytes / BYTES_PER_WORD
        return words * self.dram_access_pj * 1e-12

    def sram_energy_j(self, accesses: int) -> float:
        return accesses * self.sram_access_pj * 1e-12

    def compute_energy_j(self, macs: int) -> float:
        """``macs`` multiply-accumulate pairs (one mul + one add each)."""
        return macs * (self.fp_mul_pj + self.fp_add_pj) * 1e-12


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-image energy of one accelerator design."""

    name: str
    dram_j: float
    sram_j: float
    compute_j: float

    @property
    def total_j(self) -> float:
        return self.dram_j + self.sram_j + self.compute_j

    @property
    def dram_fraction(self) -> float:
        return self.dram_j / self.total_j if self.total_j else 0.0


def estimate_energy(name: str, transfer_bytes: int, total_ops: int,
                    model: EnergyModel = EnergyModel(),
                    sram_accesses_per_mac: float = 3.0) -> EnergyBreakdown:
    """Energy for one design.

    ``total_ops`` counts multiplies + adds (the library's convention), so
    MACs = total_ops / 2. Each MAC makes roughly three SRAM accesses
    (activation read, weight read, partial-sum update) — tunable, since
    register chaining in the dot-product tree reduces it.
    """
    macs = total_ops // 2
    return EnergyBreakdown(
        name=name,
        dram_j=model.dram_energy_j(transfer_bytes),
        sram_j=model.sram_energy_j(int(macs * sram_accesses_per_mac)),
        compute_j=model.compute_energy_j(macs),
    )
