"""FPGA device descriptions and arithmetic-unit costs.

The paper targets a Xilinx Virtex-7 XC7V690T and sizes designs by DSP
slices: "DSPadd is 2 and DSPmul is 3, based on single-precision floating
point units on the Xilinx Virtex-7 devices" (Section IV-B). One
multiply-accumulate lane therefore costs 5 DSP48E1 slices.
"""

from __future__ import annotations

from dataclasses import dataclass

#: DSP48E1 slices per single-precision floating-point adder.
DSP_PER_ADD = 2
#: DSP48E1 slices per single-precision floating-point multiplier.
DSP_PER_MUL = 3
#: Slices per multiply-accumulate lane (one multiplier + one adder).
DSP_PER_MAC = DSP_PER_ADD + DSP_PER_MUL

#: Words of 32-bit data per BRAM18 (an 18Kb block configured 512 x 36).
WORDS_PER_BRAM18 = 512


@dataclass(frozen=True)
class FpgaDevice:
    """Resource capacity of one FPGA part."""

    name: str
    dsp_slices: int
    bram18: int
    luts: int
    ffs: int

    def mac_lanes(self) -> int:
        """Upper bound on parallel fp32 MAC lanes."""
        return self.dsp_slices // DSP_PER_MAC


#: The paper's target: Virtex-7 XC7V690T FFG1761-3.
VIRTEX7_690T = FpgaDevice(
    name="XC7V690T",
    dsp_slices=3600,
    bram18=2940,
    luts=433_200,
    ffs=866_400,
)

#: The Virtex-7 VX485T used by Zhang et al. [19], for baseline context.
VIRTEX7_485T = FpgaDevice(
    name="XC7VX485T",
    dsp_slices=2800,
    bram18=2060,
    luts=303_600,
    ffs=607_200,
)
