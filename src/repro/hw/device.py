"""FPGA device descriptions and arithmetic-unit costs.

The paper targets a Xilinx Virtex-7 XC7V690T and sizes designs by DSP
slices: "DSPadd is 2 and DSPmul is 3, based on single-precision floating
point units on the Xilinx Virtex-7 devices" (Section IV-B). One
multiply-accumulate lane therefore costs 5 DSP48E1 slices.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: DSP48E1 slices per single-precision floating-point adder.
DSP_PER_ADD = 2
#: DSP48E1 slices per single-precision floating-point multiplier.
DSP_PER_MUL = 3
#: Slices per multiply-accumulate lane (one multiplier + one adder).
DSP_PER_MAC = DSP_PER_ADD + DSP_PER_MUL

#: Words of 32-bit data per BRAM18 (an 18Kb block configured 512 x 36).
WORDS_PER_BRAM18 = 512


@dataclass(frozen=True)
class FpgaDevice:
    """Resource capacity of one FPGA part."""

    name: str
    dsp_slices: int
    bram18: int
    luts: int
    ffs: int

    def mac_lanes(self) -> int:
        """Upper bound on parallel fp32 MAC lanes."""
        return self.dsp_slices // DSP_PER_MAC


#: The paper's target: Virtex-7 XC7V690T FFG1761-3.
VIRTEX7_690T = FpgaDevice(
    name="XC7V690T",
    dsp_slices=3600,
    bram18=2940,
    luts=433_200,
    ffs=866_400,
)

#: The Virtex-7 VX485T used by Zhang et al. [19], for baseline context.
VIRTEX7_485T = FpgaDevice(
    name="XC7VX485T",
    dsp_slices=2800,
    bram18=2060,
    luts=303_600,
    ffs=607_200,
)


@dataclass(frozen=True)
class DeviceSpec:
    """One simulated accelerator in a multi-device pipeline.

    Extends the static :class:`FpgaDevice` budget with the two dynamic
    quantities a pipeline stage needs: a clock (so cycle counts become
    seconds) and a *private* DRAM channel. Each device owns its channel —
    the whole point of sharding fused groups across devices is that the
    boundary traffic of a partition no longer funnels through a single
    memory interface (Section VI's bandwidth wall, split K ways).
    """

    name: str
    dsp: int
    bram18: int
    clock_mhz: float = 150.0
    dram_bytes_per_cycle: float = 2.0

    def __post_init__(self) -> None:
        from ..errors import ConfigError

        if self.dsp < DSP_PER_MAC:
            raise ConfigError(
                f"device {self.name!r} has {self.dsp} DSP slices: fewer "
                f"than one MAC lane ({DSP_PER_MAC})", device=self.name,
                dsp=self.dsp)
        if self.bram18 <= 0:
            raise ConfigError(f"device {self.name!r} needs bram18 > 0",
                              device=self.name, bram18=self.bram18)
        if self.clock_mhz <= 0 or self.dram_bytes_per_cycle <= 0:
            raise ConfigError(
                f"device {self.name!r} needs a positive clock and DRAM "
                "channel", device=self.name, clock_mhz=self.clock_mhz,
                dram_bytes_per_cycle=self.dram_bytes_per_cycle)

    @property
    def mac_lanes(self) -> int:
        return self.dsp // DSP_PER_MAC

    @property
    def ops_per_cycle(self) -> int:
        """Peak arithmetic rate: one multiply + one add per MAC lane."""
        return 2 * self.mac_lanes

    def fpga(self) -> FpgaDevice:
        """The static resource view the fused-engine optimizer consumes."""
        return FpgaDevice(name=self.name, dsp_slices=self.dsp,
                          bram18=self.bram18, luts=self.dsp * 120,
                          ffs=self.dsp * 240)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "dsp": self.dsp, "bram18": self.bram18,
                "clock_mhz": self.clock_mhz,
                "dram_bytes_per_cycle": self.dram_bytes_per_cycle}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeviceSpec":
        return cls(name=str(data["name"]), dsp=int(data["dsp"]),
                   bram18=int(data["bram18"]),
                   clock_mhz=float(data["clock_mhz"]),
                   dram_bytes_per_cycle=float(data["dram_bytes_per_cycle"]))

    def fingerprint(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:12]


#: Default pipeline device: the paper's 690T budgets with a modest
#: per-device DDR share — deliberately narrow enough that a deep network
#: served on ONE device is memory bound, which is the regime fusion (and
#: sharding) exists for.
DEFAULT_DEVICE = DeviceSpec(name="v7-690t", dsp=3600, bram18=2940,
                            clock_mhz=150.0, dram_bytes_per_cycle=2.0)


def split_device(spec: DeviceSpec, count: int) -> Tuple[DeviceSpec, ...]:
    """Split one device's DSP/BRAM budget into ``count`` equal shards.

    Total compute/storage is conserved, but every shard keeps a *full*
    private DRAM channel and the base clock — the resource-neutral fleet
    the throughput-per-DSP benchmarks compare against a single device.
    """
    from ..errors import ConfigError

    if count < 1:
        raise ConfigError(f"cannot split {spec.name!r} into {count} devices",
                          device=spec.name, count=count)
    if count == 1:
        return (spec,)
    return tuple(
        DeviceSpec(name=f"{spec.name}/{i}", dsp=spec.dsp // count,
                   bram18=max(spec.bram18 // count, 1),
                   clock_mhz=spec.clock_mhz,
                   dram_bytes_per_cycle=spec.dram_bytes_per_cycle)
        for i in range(count))


def replicate_device(spec: DeviceSpec, count: int) -> Tuple[DeviceSpec, ...]:
    """``count`` full copies of ``spec`` — the scale-out (not
    resource-neutral) fleet."""
    from ..errors import ConfigError

    if count < 1:
        raise ConfigError(f"cannot build a fleet of {count}",
                          device=spec.name, count=count)
    if count == 1:
        return (spec,)
    return tuple(
        DeviceSpec(name=f"{spec.name}[{i}]", dsp=spec.dsp,
                   bram18=spec.bram18, clock_mhz=spec.clock_mhz,
                   dram_bytes_per_cycle=spec.dram_bytes_per_cycle)
        for i in range(count))
