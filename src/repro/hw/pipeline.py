"""Discrete-event simulation of the fused pipeline (Figure 6).

The fused accelerator instantiates one module per fused layer and
pipelines pyramids through them: pyramid two starts its first stage as
soon as pyramid one leaves it. This module simulates that schedule
exactly, giving the makespan the analytic model approximates with
``fill + n_pyramids * bottleneck``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class StageTiming:
    """One pipeline stage: name and its per-pyramid busy time (cycles)."""

    name: str
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"stage {self.name}: negative cycles")


@dataclass(frozen=True)
class PipelineSchedule:
    """Result of simulating ``num_items`` through the stage chain."""

    stages: Tuple[StageTiming, ...]
    num_items: int
    makespan: int
    stage_finish: Tuple[Tuple[int, ...], ...]  # [item][stage] completion times

    @property
    def bottleneck(self) -> StageTiming:
        return max(self.stages, key=lambda s: s.cycles)

    @property
    def steady_state_interval(self) -> int:
        """Cycles between consecutive pyramid completions once full."""
        return max(stage.cycles for stage in self.stages)

    @property
    def fill_cycles(self) -> int:
        """Time for the first pyramid to traverse the whole pipeline."""
        return sum(stage.cycles for stage in self.stages)

    @property
    def utilization(self) -> List[float]:
        """Busy fraction of each stage over the makespan."""
        if self.makespan == 0:
            return [0.0 for _ in self.stages]
        return [self.num_items * s.cycles / self.makespan for s in self.stages]


def simulate_pipeline(stages: Sequence[StageTiming], num_items: int) -> PipelineSchedule:
    """Event-driven simulation of a linear pipeline without internal
    buffering: stage ``s`` starts item ``i`` when stage ``s-1`` finished
    item ``i`` and stage ``s`` finished item ``i-1``."""
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    stages = tuple(stages)
    finish: List[Tuple[int, ...]] = []
    prev_item = [0] * len(stages)
    for _ in range(num_items):
        times: List[int] = []
        ready = 0  # completion of this item at the previous stage
        for s, stage in enumerate(stages):
            start = max(ready, prev_item[s])
            done = start + stage.cycles
            times.append(done)
            ready = done
            prev_item[s] = done
        finish.append(tuple(times))
    makespan = finish[-1][-1] if finish else 0
    return PipelineSchedule(stages=stages, num_items=num_items,
                            makespan=makespan, stage_finish=tuple(finish))


def analytic_makespan(stages: Sequence[StageTiming], num_items: int) -> int:
    """Closed form for a linear pipeline: fill + (n-1) * bottleneck."""
    if num_items == 0:
        return 0
    fill = sum(stage.cycles for stage in stages)
    bottleneck = max(stage.cycles for stage in stages)
    return fill + (num_items - 1) * bottleneck
