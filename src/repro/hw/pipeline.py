"""Discrete-event simulation of the fused pipeline (Figure 6).

The fused accelerator instantiates one module per fused layer and
pipelines pyramids through them: pyramid two starts its first stage as
soon as pyramid one leaves it. This module simulates that schedule
exactly, giving the makespan the analytic model approximates with
``fill + n_pyramids * bottleneck``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..errors import ConfigError


@dataclass(frozen=True)
class StageTiming:
    """One pipeline stage: name and its per-pyramid busy time (cycles)."""

    name: str
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ConfigError(f"stage {self.name}: negative cycles",
                              stage=self.name, cycles=self.cycles)


@dataclass(frozen=True)
class PipelineSchedule:
    """Result of simulating ``num_items`` through the stage chain."""

    stages: Tuple[StageTiming, ...]
    num_items: int
    makespan: int
    stage_finish: Tuple[Tuple[int, ...], ...]  # [item][stage] completion times

    @property
    def bottleneck(self) -> StageTiming:
        return max(self.stages, key=lambda s: s.cycles)

    @property
    def steady_state_interval(self) -> int:
        """Cycles between consecutive pyramid completions once full."""
        return max(stage.cycles for stage in self.stages)

    @property
    def fill_cycles(self) -> int:
        """Time for the first pyramid to traverse the whole pipeline."""
        return sum(stage.cycles for stage in self.stages)

    @property
    def utilization(self) -> List[float]:
        """Busy fraction of each stage over the makespan."""
        if self.makespan == 0:
            return [0.0 for _ in self.stages]
        return [self.num_items * s.cycles / self.makespan for s in self.stages]

    def busy_cycles(self, stage_index: int) -> int:
        """Total busy cycles of one stage over the whole run."""
        return self.num_items * self.stages[stage_index].cycles

    def idle_cycles(self, stage_index: int) -> int:
        """Cycles one stage spends waiting (fill, drain, stalls)."""
        return self.makespan - self.busy_cycles(stage_index)


def simulate_pipeline(stages: Sequence[StageTiming], num_items: int,
                      name: Optional[str] = None,
                      faults=None) -> PipelineSchedule:
    """Event-driven simulation of a linear pipeline without internal
    buffering: stage ``s`` starts item ``i`` when stage ``s-1`` finished
    item ``i`` and stage ``s`` finished item ``i-1``.

    When the observability registry is enabled the resulting schedule is
    recorded (optionally under ``name``) so exporters can render one
    timeline track per stage and report busy/idle cycles + utilization.

    ``faults`` (a :class:`~repro.faults.injector.FaultInjector`) subjects
    each stage execution to the plan's ``stage_stall`` fault: a stalled
    execution holds its stage for the extra cycles and the delay ripples
    through the schedule exactly as a real pipeline bubble would.
    """
    if num_items < 0:
        raise ConfigError("num_items must be non-negative", num_items=num_items)
    stages = tuple(stages)
    with obs.span("pipeline.simulate", stages=len(stages), items=num_items):
        finish: List[Tuple[int, ...]] = []
        prev_item = [0] * len(stages)
        for item in range(num_items):
            times: List[int] = []
            ready = 0  # completion of this item at the previous stage
            for s, stage in enumerate(stages):
                start = max(ready, prev_item[s])
                done = start + stage.cycles
                if faults is not None:
                    stall = faults.stage_stall_cycles(
                        stage.name, f"{stage.name}#{item}")
                    if stall:
                        done += stall
                        obs.add_counter("faults.stage_stall_cycles", stall)
                times.append(done)
                ready = done
                prev_item[s] = done
            finish.append(tuple(times))
        makespan = finish[-1][-1] if finish else 0
    schedule = PipelineSchedule(stages=stages, num_items=num_items,
                                makespan=makespan, stage_finish=tuple(finish))
    if obs.enabled():
        obs.record_pipeline(
            stage_names=[s.name for s in stages],
            stage_cycles=[s.cycles for s in stages],
            num_items=num_items,
            makespan=makespan,
            stage_finish=schedule.stage_finish,
            name=name,
        )
        for i, stage in enumerate(stages):
            obs.add_counter(f"pipeline.busy_cycles[{stage.name}]",
                            schedule.busy_cycles(i))
            obs.add_counter(f"pipeline.idle_cycles[{stage.name}]",
                            schedule.idle_cycles(i))
    return schedule


def analytic_makespan(stages: Sequence[StageTiming], num_items: int) -> int:
    """Closed form for a linear pipeline: fill + (n-1) * bottleneck."""
    if num_items == 0:
        return 0
    fill = sum(stage.cycles for stage in stages)
    bottleneck = max(stage.cycles for stage in stages)
    return fill + (num_items - 1) * bottleneck
