"""The baseline layer-by-layer CNN accelerator, after Zhang et al. [19].

One compute module of ``Tm x Tn`` MAC lanes (Figure 5) is reused for
every convolutional layer. Loops over output channels (M), input
channels (N) and the spatial tile (Tr x Tc) are tiled; the ``Tm``/``Tn``
loops are fully unrolled into hardware. Double-buffered on-chip arrays
overlap DRAM transfer with compute.

The cycle model is the paper's Section IV-B formula::

    Cycles_i = ceil(M_i/Tm) * ceil(N_i/Tn) * outW_i * outH_i * K_i^2

and the traffic model follows the Listing 1/2 loop nest: the output tile
stays on chip across the inner N loop (each output element written once),
while the input feature maps are re-read once per M-tile group, with the
``K - S`` halo re-fetched around every spatial tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..nn.shapes import BYTES_PER_WORD
from ..nn.stages import Level
from .device import DSP_PER_MAC, VIRTEX7_690T, FpgaDevice
from .resources import ResourceEstimate


@dataclass(frozen=True)
class ConvStage:
    """A conv level together with a pooling level merged into its store."""

    conv: Level
    pool: Optional[Level] = None

    @property
    def name(self) -> str:
        if self.pool is not None:
            return f"{self.conv.name}+{self.pool.name}"
        return self.conv.name

    @property
    def stored_shape(self):
        return self.pool.out_shape if self.pool is not None else self.conv.out_shape


def group_stages(levels: Sequence[Level]) -> List[ConvStage]:
    """Pair each conv level with an immediately following pooling level.

    The paper grants its baseline this optimization: "when we calculate
    the data transfer requirements of [19] we include pooling" — pooling
    is computed on chip before the store, shrinking output traffic.
    """
    stages: List[ConvStage] = []
    i = 0
    while i < len(levels):
        level = levels[i]
        if not level.is_conv:
            raise ConfigError(f"{level.name}: baseline stages must start with a conv",
                              level=level.name)
        pool = None
        if i + 1 < len(levels) and levels[i + 1].is_pool:
            pool = levels[i + 1]
            i += 1
        stages.append(ConvStage(conv=level, pool=pool))
        i += 1
    return stages


@dataclass(frozen=True)
class StageCost:
    """Per-stage cycles and DRAM traffic for one tiling choice."""

    stage: ConvStage
    tm: int
    tn: int
    tr: int
    tc: int
    cycles: int
    input_words: int
    output_words: int
    weight_words: int
    weights_resident: bool = True

    @property
    def transfer_words(self) -> int:
        return self.input_words + self.output_words + self.weight_words

    @property
    def feature_words(self) -> int:
        return self.input_words + self.output_words


def stage_cost(stage: ConvStage, tm: int, tn: int, tr: int, tc: int,
               weights_resident: bool = True) -> StageCost:
    """Evaluate one stage under tile parameters (Tm, Tn, Tr, Tc).

    ``weights_resident`` models the paper's early-layer assumption ("the
    weights easily fit into on-chip storage in their entirety for these
    layers"): weights cross the chip boundary once. Late layers whose
    weights exceed on-chip storage must instead stream a Tm x Tn x K x K
    weight tile per (m, n) step of *every spatial tile* — re-reading the
    whole filter set once per spatial tile.
    """
    conv = stage.conv
    out = conv.out_shape
    tr = min(tr, out.height)
    tc = min(tc, out.width)
    k, s = conv.kernel, conv.stride
    # Grouped convolutions (AlexNet conv2/4/5) run once per group over
    # M/g output and N/g input channels.
    g = conv.groups
    m, n = conv.out_channels // g, conv.in_channels // g

    cycles = g * ceil(m / tm) * ceil(n / tn) * out.height * out.width * k * k

    # Input traffic: each spatial tile loads an (S*tr + K - S) x (S*tc +
    # K - S) window of all N (padded) input maps; padding zeros are
    # generated on chip and cost no bandwidth. The whole sweep repeats
    # once per M-tile group because the input cannot stay resident while
    # every output channel group is produced.
    padded = conv.padded_in_shape
    tiles_r = ceil(out.height / tr)
    tiles_c = ceil(out.width / tc)
    window_words = 0
    for i in range(tiles_r):
        rows = min(tr, out.height - i * tr)
        in_rows = s * rows + k - s
        row_lo = i * tr * s
        real_rows = _unpadded_extent(row_lo, row_lo + in_rows, conv.pad, conv.in_shape.height)
        for j in range(tiles_c):
            cols = min(tc, out.width - j * tc)
            in_cols = s * cols + k - s
            col_lo = j * tc * s
            real_cols = _unpadded_extent(col_lo, col_lo + in_cols, conv.pad,
                                         conv.in_shape.width)
            window_words += real_rows * real_cols
    input_words = ceil(m / tm) * n * g * window_words

    stored = stage.stored_shape
    output_words = stored.elements
    weight_count = conv.weight_count + (stage.pool.weight_count if stage.pool else 0)
    if weights_resident:
        weight_words = weight_count
    else:
        weight_words = weight_count * tiles_r * tiles_c
    del padded
    return StageCost(stage=stage, tm=tm, tn=tn, tr=tr, tc=tc, cycles=cycles,
                     input_words=input_words, output_words=output_words,
                     weight_words=weight_words, weights_resident=weights_resident)


def _unpadded_extent(lo: int, hi: int, pad: int, size: int) -> int:
    lo = max(lo - pad, 0)
    hi = min(hi - pad, size)
    return max(hi - lo, 0)


@dataclass(frozen=True)
class BaselineDesign:
    """A complete baseline accelerator: one (Tm, Tn) shared by all stages."""

    stages: Tuple[StageCost, ...]
    tm: int
    tn: int
    device: FpgaDevice

    @property
    def total_cycles(self) -> int:
        return sum(stage.cycles for stage in self.stages)

    @property
    def transfer_bytes(self) -> int:
        return sum(stage.transfer_words for stage in self.stages) * BYTES_PER_WORD

    @property
    def feature_transfer_bytes(self) -> int:
        return sum(stage.feature_words for stage in self.stages) * BYTES_PER_WORD

    @property
    def dsp(self) -> int:
        return self.tm * self.tn * DSP_PER_MAC

    def resources(self) -> ResourceEstimate:
        """BRAM/LUT/FF estimate for the shared compute module."""
        est = ResourceEstimate(mac_lanes=self.tm * self.tn, control_complexity=2)
        max_in = max(
            self.tn * (s.stage.conv.stride * s.tr + s.stage.conv.kernel - s.stage.conv.stride)
            * (s.stage.conv.stride * s.tc + s.stage.conv.kernel - s.stage.conv.stride)
            for s in self.stages
        )
        max_out = max(self.tm * s.tr * s.tc for s in self.stages)
        weights = sum(s.weight_words for s in self.stages)
        est.add_buffer("input", max_in, banks=self.tn, double_buffered=True)
        est.add_buffer("output", max_out, banks=self.tm, double_buffered=True)
        est.add_buffer("weights", weights, banks=self.tm)
        if any(s.stage.pool is not None for s in self.stages):
            # The paper accounts pooling support in the baseline "as only
            # 22 additional BRAMs".
            est.add_buffer("pool-line", 22 * 512)
        return est


def optimize_baseline(levels: Sequence[Level], dsp_budget: int,
                      device: FpgaDevice = VIRTEX7_690T,
                      tile_candidates: Sequence[int] = (7, 14, 27, 28, 55, 56, 112, 224),
                      bram_words_budget: Optional[int] = None) -> BaselineDesign:
    """Joint (Tm, Tn) optimization of [19] over all stages.

    Enumerates every (Tm, Tn) with ``Tm * Tn * 5 <= dsp_budget``, picks
    the spatial tile per stage that fits the buffer budget with minimum
    traffic, and keeps the design minimizing total cycles (traffic breaks
    ties).
    """
    stages = group_stages(list(levels))
    max_lanes = dsp_budget // DSP_PER_MAC
    if max_lanes < 1:
        raise ConfigError(f"DSP budget {dsp_budget} cannot fit one MAC lane",
                          dsp_budget=dsp_budget)
    max_m = max(s.conv.out_channels for s in stages)
    max_n = max(s.conv.in_channels for s in stages)
    if bram_words_budget is None:
        # Leave room for weights; bound the double-buffered tiles.
        bram_words_budget = device.bram18 * 512 // 2

    best: Optional[BaselineDesign] = None
    best_key = None
    for tm in range(1, min(max_lanes, max_m) + 1):
        tn = min(max_lanes // tm, max_n)
        if tn < 1:
            break
        costs = [_best_stage_cost(stage, tm, tn, tile_candidates, bram_words_budget)
                 for stage in stages]
        design = BaselineDesign(stages=tuple(costs), tm=tm, tn=tn, device=device)
        key = (design.total_cycles, design.transfer_bytes)
        if best_key is None or key < best_key:
            best, best_key = design, key
    assert best is not None
    return best


def _best_stage_cost(stage: ConvStage, tm: int, tn: int,
                     tile_candidates: Sequence[int], words_budget: int) -> StageCost:
    out = stage.conv.out_shape
    candidates = sorted({min(t, out.height) for t in tile_candidates}
                        | {out.height}, reverse=True)
    chosen: Optional[StageCost] = None
    for tr in candidates:
        tc = min(tr, out.width)
        cost = stage_cost(stage, tm, tn, tr, tc)
        k, s = stage.conv.kernel, stage.conv.stride
        in_words = 2 * tn * (s * cost.tr + k - s) * (s * cost.tc + k - s)
        out_words = 2 * tm * cost.tr * cost.tc
        if in_words + out_words <= words_budget:
            return cost  # biggest tile that fits => least halo traffic
        chosen = cost
    assert chosen is not None
    return chosen  # nothing fits: return smallest candidate anyway
