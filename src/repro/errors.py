"""Structured exception hierarchy shared by every subsystem.

All errors the reproduction raises on purpose derive from
:class:`ReproError`, so callers (and the CLI's top level) can catch one
type and know it is a diagnosed condition, not a stray bug. Three broad
families cover the failure modes a simulation service meets:

* :class:`ConfigError` — the *request* is wrong: impossible geometry,
  malformed network description, invalid fault spec, bad budgets. Also a
  ``ValueError`` so legacy ``except ValueError`` call sites keep working.
* :class:`SimFaultError` — the *simulation* went wrong at run time: an
  injected DRAM fault survived every retry, a reuse buffer was read
  outside its resident window, an exploration invariant broke. Also a
  ``RuntimeError`` for backward compatibility.
* :class:`BudgetExceeded` — a bounded exploration ran out of wall clock
  or evaluations. Raised only when the caller asked for strictness
  (``on_budget="raise"``); the default contract is graceful degradation
  (see :mod:`repro.faults.budget`).

Every ``ReproError`` carries a ``context`` mapping of keyword details
(``network="vgg"``, ``attempts=4`` ...) rendered into ``str(err)`` so a
one-line message is actionable without a traceback.

This module is a leaf: it imports nothing from the package, so any layer
(``nn``, ``core``, ``sim``, ``hw``, ``faults``) may depend on it freely.
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Base for all diagnosed errors raised by the reproduction."""

    def __init__(self, message: str, **context: Any):
        self.message = message
        self.context: Dict[str, Any] = dict(context)
        super().__init__(message)

    def __str__(self) -> str:
        if not self.context:
            return self.message
        details = ", ".join(
            f"{key}={value!r}" for key, value in sorted(self.context.items())
        )
        return f"{self.message} [{details}]"


class ConfigError(ReproError, ValueError):
    """Invalid input, geometry, spec, or parameter combination."""


class SimFaultError(ReproError, RuntimeError):
    """A runtime simulation failure: exhausted retries, broken invariant."""


class BudgetExceeded(ReproError):
    """A bounded exploration hit its wall-clock or evaluation budget."""


class ServeOverloadError(ReproError, RuntimeError):
    """The serving queue is full: admission control fast-failed a request.

    Raised synchronously by :meth:`repro.serve.InferenceService.submit`
    (and the scheduler underneath) when the bounded request queue is at
    capacity, so callers get backpressure immediately instead of
    unbounded latency. Carries ``depth``/``max_queue`` context and,
    when the scheduler can estimate it, a ``retry_after_s`` hint.
    """

    @property
    def retry_after_s(self) -> float:
        """Suggested wait before resubmitting (0.0 when unknown)."""
        return float(self.context.get("retry_after_s", 0.0))


class ServeShedError(ServeOverloadError):
    """A sheddable request was dropped by graceful load shedding.

    Unlike the hard-full :class:`ServeOverloadError` it subclasses,
    shedding fires *before* the queue is full — at the admission
    policy's depth or estimated-wait watermark — and only for requests
    in the ``sheddable`` class, so guaranteed traffic keeps being
    admitted while the service degrades gracefully under overload. The
    ``retry_after_s`` context is the scheduler's estimate of when the
    backlog will have drained; clients that honor it act like an HTTP
    429 ``Retry-After`` backoff.
    """
