"""Serving throughput: batched parallel serving vs one-at-a-time.

The acceptance bar for the serving subsystem: on ToyNet, 4 workers with
``max_batch=8`` must sustain at least 2x the requests/s of 1 worker with
``max_batch=1``. On a single-core runner the win comes from vectorized
batched execution (one NumPy call per layer per batch instead of per
item), which is exactly the amortization micro-batching exists to buy —
worker parallelism adds on top when cores are available.

Results land in ``benchmarks/results/BENCH_serve.json``.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.nn.zoo import toynet
from repro.serve import InferenceService, PlanCache
from repro.sim import NetworkExecutor

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_serve.json"

REQUESTS = 256


@pytest.fixture(scope="module")
def workload():
    network = toynet()
    shape = network.input_shape
    rng = np.random.default_rng(0)
    xs = [np.round(rng.uniform(-4.0, 4.0, size=(
        shape.channels, shape.height, shape.width)))
        for _ in range(REQUESTS)]
    cache = PlanCache()
    cache.get_or_compile(network)  # compile once, outside the timed runs
    return network, xs, cache


def _serve(network, xs, cache, workers, max_batch):
    svc = InferenceService(network, workers=workers, max_batch=max_batch,
                           max_wait_ms=0.5, max_queue=len(xs), cache=cache)
    futures = svc.submit_batch(xs)
    outs = [f.result(timeout=120) for f in futures]
    svc.shutdown()
    return outs, svc.stats


def test_batched_parallel_serving_at_least_2x(workload):
    network, xs, cache = workload
    _serve(network, xs, cache, workers=1, max_batch=1)  # warm-up
    _, single = _serve(network, xs, cache, workers=1, max_batch=1)
    outs, batched = _serve(network, xs, cache, workers=4, max_batch=8)

    direct = NetworkExecutor(network, seed=0, integer=True)
    assert np.array_equal(outs[0], direct.run(xs[0]))
    assert np.array_equal(outs[-1], direct.run(xs[-1]))

    single_rps = single.requests_per_s()
    batched_rps = batched.requests_per_s()
    speedup = batched_rps / single_rps
    summary = {
        "bench": "serve_throughput",
        "network": network.name,
        "requests": REQUESTS,
        "single": {"workers": 1, "max_batch": 1,
                   "requests_per_s": round(single_rps, 1),
                   **{k: single.summary()[k]
                      for k in ("queue_wait_ms", "execute_ms")}},
        "batched": {"workers": 4, "max_batch": 8,
                    "requests_per_s": round(batched_rps, 1),
                    **{k: batched.summary()[k]
                       for k in ("queue_wait_ms", "execute_ms")}},
        "speedup": round(speedup, 2),
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True)
                            + "\n")
    print(f"\nserving throughput: {single_rps:,.0f} -> {batched_rps:,.0f} "
          f"requests/s ({speedup:.2f}x) [written to {RESULTS_PATH}]")
    assert single.completed == REQUESTS and batched.completed == REQUESTS
    assert speedup >= 2.0, (
        f"batched parallel serving managed only {speedup:.2f}x "
        f"({single_rps:.0f} vs {batched_rps:.0f} requests/s)")
