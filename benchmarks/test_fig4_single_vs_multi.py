"""Figure 4: a single pyramid versus multi-pyramid decompositions.

The figure's narrative, quantified in hardware: fusing everything into
one pyramid minimizes DRAM transfer but needs the largest buffers; each
extra pyramid boundary trades a DRAM round-trip of its feature map for
smaller per-engine storage.
"""

from repro import extract_levels, vggnet_e
from repro.analysis import render_table
from repro.hw.multi import design_partition

MB = 2 ** 20


def sweep_partitions(levels, partitions, dsp_budget=2880):
    designs = []
    for sizes in partitions:
        designs.append((sizes, design_partition(levels, sizes, dsp_budget=dsp_budget)))
    return designs


def test_figure4_single_vs_multi(benchmark, record):
    levels = extract_levels(vggnet_e().prefix(5))
    partitions = [(7,), (3, 4), (3, 1, 3), (1,) * 7]
    designs = benchmark.pedantic(sweep_partitions, args=(levels, partitions),
                                 rounds=1, iterations=1)

    record(render_table(
        ["partition", "engines", "transfer MB", "latency kcyc",
         "interval kcyc", "max engine BRAM"],
        [(str(sizes), len(d.engines),
          f"{d.feature_transfer_bytes / MB:.2f}",
          f"{d.latency_cycles / 1e3:.0f}",
          f"{d.throughput_interval / 1e3:.0f}",
          max(e.resources().bram18 for e in d.engines))
         for sizes, d in designs],
    ), "fig4_single_vs_multi")

    by_sizes = {sizes: d for sizes, d in designs}
    single = by_sizes[(7,)]
    two = by_sizes[(3, 4)]
    lbl = by_sizes[(1,) * 7]

    # Transfer: monotone in the number of cuts along this chain.
    assert (single.feature_transfer_bytes < two.feature_transfer_bytes
            < lbl.feature_transfer_bytes)
    # The single pyramid's engine carries the biggest buffers.
    single_bram = single.engines[0].resources().bram18
    assert all(e.resources().bram18 < single_bram for e in two.engines)
    # Per-image latency grows with cuts (each boundary serializes).
    assert single.latency_cycles < two.latency_cycles < lbl.latency_cycles
