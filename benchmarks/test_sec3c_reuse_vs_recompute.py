"""Section III-C: recomputing vs storing intermediate pyramid data.

The paper's argument for the reuse strategy: recomputation inflates
arithmetic by ~8.6x for a two-layer AlexNet fusion (and catastrophically
for deep fusions), while reuse costs only tens of KB to a few MB of
on-chip storage.
"""

import pytest

from repro import alexnet, extract_levels, vggnet_e
from repro.analysis import render_strategy_rows, reuse_vs_recompute, section3c


def test_sec3c_alexnet_and_vgg(benchmark, record):
    data = benchmark(section3c)
    text = "\n\n".join(render_strategy_rows(rows) for rows in data.values())
    record(text, "sec3c_reuse_vs_recompute")

    alex = data["alexnet-fuse2"][0]
    # "an 8.6x increase in the overall number of arithmetic operations"
    assert alex.adjacent_factor == pytest.approx(8.6, rel=0.02)
    # "the reuse model only requires 55.86KB of additional on-chip
    # storage" — our general BL/BT accounting lands within ~1.3x.
    assert 40 < alex.reuse_storage_kb < 90

    vgg = data["vgg-fuse-all"][0]
    # "470 billion extra multiplications and additions" vs "only 1.4MB of
    # storage": hundreds of billions of ops against a few MB of SRAM.
    assert vgg.recompute_extra_exact > 100e9
    assert vgg.reuse_storage_kb < 4 * 1024
    # Recompute is catastrophic; reuse is ~free arithmetically.
    assert vgg.exact_factor > 5


def test_sec3c_tip_sweep_alexnet(benchmark, record):
    """Larger pyramid tips amortize the overlap: the recompute penalty
    collapses toward 1x as the tile grows (the regime where the paper's
    678M-extra-ops figure lives)."""
    levels = extract_levels(alexnet().prefix(2))
    rows = benchmark(reuse_vs_recompute, levels, "AlexNet conv1-conv2",
                     (1, 3, 9, 27))
    record(render_strategy_rows(rows), "sec3c_tip_sweep")
    factors = [r.exact_factor for r in rows]
    assert all(a >= b for a, b in zip(factors, factors[1:]))
    assert factors[-1] == 1.0  # whole-map tip -> single pyramid -> no redundancy
