"""Figure 7(a): AlexNet's fusion design space (128 partitions).

Regenerates every (storage, transfer) point and the Pareto front for the
five convolutional and three pooling layers of AlexNet.
"""

from repro import alexnet
from repro.analysis import figure7_data, render_figure7

MB = 2 ** 20
KB = 2 ** 10


def test_figure7a_alexnet_design_space(benchmark, record):
    data = benchmark(figure7_data, alexnet())
    record(render_figure7(data, front_only=True), "fig7a_alexnet_front")

    # "The AlexNet CNN has five convolutional layers and three pooling
    # layers; there are 128 possible combinations."
    assert data.num_partitions == 128

    a = data.labeled("A")
    c = data.labeled("C")
    assert a.storage_kb == 0
    assert c.transfer_mb < a.transfer_mb / 4  # fusion slashes traffic
    # Front is monotone: paying storage always buys bandwidth.
    front = data.front
    for left, right in zip(front, front[1:]):
        assert left.storage_kb <= right.storage_kb
        assert left.transfer_mb > right.transfer_mb
