"""Tuner search quality: guided vs exhaustive on AlexNet (ISSUE satellite).

The enumerable reference subspace is AlexNet's eight fusion units crossed
with the three pyramid tips — 128 partitions x 3 tips = 384 candidates,
all default-tiled and reuse-strategy. The guided tuner gets at most 10%
of that budget (38 evaluations) over the *joint* space (which also
includes tile caps and recompute) and must land within 5% of the true
subspace optimum.

BRAM is relaxed to 8192 BRAM18 so the whole reference subspace is
feasible — AlexNet at full 227x227 input exceeds the XC7V690T's on-chip
storage even layer-by-layer, and this benchmark measures search
efficiency, not device fit (fig7a makes the same abstraction).

Results land in ``benchmarks/results/BENCH_tune.json``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.partition import compositions
from repro.nn.zoo import alexnet
from repro.tune import Candidate, SearchSpace, evaluate_candidate, tune
from repro.tune.evaluate import EvalContext

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_tune.json"

BRAM_BUDGET = 8192
TIPS = (1, 2, 4)
SEED = 7


@pytest.fixture(scope="module")
def space():
    return SearchSpace.from_network(alexnet(), bram_budget=BRAM_BUDGET)


@pytest.fixture(scope="module")
def exhaustive(space):
    """True optimum of the partition x tip subspace, default tiling."""
    ctx = EvalContext.from_space(space)
    n = space.num_units
    values = {}
    for sizes in compositions(n):
        for tip in TIPS:
            cand = Candidate(sizes=sizes, tiles=(None,) * len(sizes),
                             strategy="reuse", tip=tip)
            result = evaluate_candidate(ctx, cand)
            if result.valid:
                values[cand.key()] = result.metrics["cycles"]
    subspace = 2 ** (n - 1) * len(TIPS)
    assert values, "reference subspace entirely infeasible"
    return values, subspace


@pytest.fixture(scope="module")
def guided(space, exhaustive):
    _, subspace = exhaustive
    evals = subspace // 10  # the <=10% budget the ISSUE allows
    return tune(alexnet(), objective="cycles", evals=evals, seed=SEED,
                space=space), evals


def test_guided_search_lands_within_5pct_of_optimum(
        exhaustive, guided, record):
    values, subspace = exhaustive
    result, evals = guided
    true_opt = min(values.values())

    assert evals <= subspace // 10
    assert result.considered == evals
    # The joint space is a superset of the reference subspace, so the
    # tuner may legitimately beat true_opt; it must never trail by >5%.
    assert result.incumbent.value <= 1.05 * true_opt

    gap = result.incumbent.value / true_opt - 1.0
    payload = {
        "bench": "tune_quality",
        "network": "AlexNet",
        "subspace_candidates": subspace,
        "subspace_feasible": len(values),
        "true_optimum_cycles": true_opt,
        "guided_evals": evals,
        "guided_incumbent_cycles": result.incumbent.value,
        "guided_incumbent": result.incumbent.candidate.key(),
        "gap_vs_optimum": round(gap, 4),
        "fresh": result.fresh,
        "pruned": result.pruned,
        "invalid": result.invalid,
        "seed": SEED,
        "bram_budget": BRAM_BUDGET,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                            + "\n")

    lines = [
        "Tune quality: AlexNet, guided vs exhaustive",
        f"  reference subspace : {subspace} candidates "
        f"({len(values)} feasible)",
        f"  true optimum       : {true_opt:,.0f} cycles",
        f"  guided budget      : {evals} evals (10%)",
        f"  guided incumbent   : {result.incumbent.value:,.0f} cycles "
        f"[{result.incumbent.candidate.key()}]",
        f"  gap                : {gap:+.2%}",
    ]
    record("\n".join(lines), "tune_quality")


def test_guided_budget_is_deterministic(guided):
    result, evals = guided
    again = tune(alexnet(),
                 objective="cycles", evals=evals, seed=SEED,
                 space=SearchSpace.from_network(alexnet(),
                                                bram_budget=BRAM_BUDGET))
    assert again.incumbent.candidate == result.incumbent.candidate
    assert again.incumbent.value == result.incumbent.value
