"""Extension: bandwidth crossover and energy for the Table II designs.

The paper motivates fusion by bandwidth and energy (Sections I-II) but
reports only transfer volume. These benches quantify both for the actual
Table II design pair: at what DRAM bandwidth does the baseline go
memory-bound, and how much per-image energy does fusion save?
"""

import pytest

from repro import extract_levels, vggnet_e
from repro.analysis import render_table
from repro.hw import (
    bandwidth_sweep,
    estimate_energy,
    memory_bound_threshold,
    optimize_baseline,
    optimize_fused,
)
from repro.core.costs import one_pass_ops

GB = 2 ** 30


@pytest.fixture(scope="module")
def designs():
    levels = extract_levels(vggnet_e().prefix(5))
    return (levels,
            optimize_fused(levels, dsp_budget=2987),
            optimize_baseline(levels, dsp_budget=2880))


def test_bandwidth_crossover(benchmark, record, designs):
    levels, fused, baseline = designs
    bandwidths = [0.5, 1, 2, 4, 8, 16, 32, 64, 128]

    points = benchmark(
        bandwidth_sweep,
        fused.total_cycles, fused.feature_transfer_bytes,
        baseline.total_cycles, baseline.feature_transfer_bytes,
        bandwidths,
    )
    record(render_table(
        ["bytes/cycle", "GB/s @100MHz", "fused kcyc", "baseline kcyc", "fused speedup"],
        [(p.bytes_per_cycle, f"{p.bytes_per_cycle * 100e6 / GB:.1f}",
          f"{p.fused_cycles / 1e3:.0f}", f"{p.baseline_cycles / 1e3:.0f}",
          f"{p.speedup:.2f}x") for p in points],
    ), "ablation_bandwidth_crossover")

    # The baseline needs ~6 bytes/cycle to stay compute-bound; the fused
    # design streams happily below 1.
    base_threshold = memory_bound_threshold(baseline.total_cycles,
                                            baseline.feature_transfer_bytes)
    fused_threshold = memory_bound_threshold(fused.total_cycles,
                                             fused.feature_transfer_bytes)
    assert fused_threshold < base_threshold / 10
    # Starved of bandwidth, fused wins big; with abundant bandwidth the
    # two designs converge to their compute times.
    assert points[0].speedup > 4
    assert points[-1].speedup == pytest.approx(
        baseline.total_cycles / fused.total_cycles, rel=0.01)


def test_energy_comparison(benchmark, record, designs):
    levels, fused, baseline = designs
    ops = one_pass_ops(levels)

    def estimate():
        return (estimate_energy("fused", fused.feature_transfer_bytes, ops),
                estimate_energy("baseline", baseline.feature_transfer_bytes, ops))

    fused_e, base_e = benchmark(estimate)
    record(render_table(
        ["design", "DRAM mJ", "SRAM mJ", "compute mJ", "total mJ", "DRAM %"],
        [(e.name, f"{e.dram_j * 1e3:.2f}", f"{e.sram_j * 1e3:.2f}",
          f"{e.compute_j * 1e3:.2f}", f"{e.total_j * 1e3:.2f}",
          f"{e.dram_fraction:.0%}") for e in (fused_e, base_e)],
    ), "ablation_energy")

    # Fusion removes ~94% of feature-map DRAM energy.
    assert fused_e.dram_j < 0.1 * base_e.dram_j
    assert fused_e.total_j < base_e.total_j
