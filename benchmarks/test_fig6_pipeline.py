"""Figure 6: pipelining pyramids through the fused stages.

Simulates the stage-by-stage schedule and checks the figure's shape:
pyramid 2 starts its first stage as soon as pyramid 1 leaves it, and in
steady state one pyramid completes per bottleneck interval.
"""

from repro import extract_levels, vggnet_e
from repro.analysis import figure6_timeline, render_table
from repro.hw import optimize_fused, simulate_pipeline


def test_figure6_pipeline_timeline(benchmark, record):
    levels = extract_levels(vggnet_e().prefix(5))
    design = optimize_fused(levels, dsp_budget=2987)

    entries = benchmark(figure6_timeline, design, 3)
    text = render_table(
        ["pyramid", "stage", "finish cycle"],
        [(e.pyramid, e.stage, e.finish_cycle) for e in entries],
    )
    record(text, "fig6_pipeline_timeline")

    stages = design.stage_timings()
    by_pyramid = {}
    for entry in entries:
        by_pyramid.setdefault(entry.pyramid, []).append(entry.finish_cycle)

    # Pyramid 2's first stage completes exactly one load after pyramid 1's.
    assert by_pyramid[2][0] == by_pyramid[1][0] + stages[0].cycles
    # Each pyramid finishes after its predecessor at every stage.
    for s in range(len(stages)):
        assert by_pyramid[1][s] < by_pyramid[2][s] < by_pyramid[3][s]


def test_figure6_steady_state_throughput(benchmark):
    levels = extract_levels(vggnet_e().prefix(5))
    design = optimize_fused(levels, dsp_budget=2987)
    stages = design.stage_timings()

    schedule = benchmark(simulate_pipeline, stages, 100)
    bottleneck = schedule.steady_state_interval
    # Completion interval in steady state equals the bottleneck stage.
    completions = [t[-1] for t in schedule.stage_finish]
    gaps = {b - a for a, b in zip(completions[50:], completions[51:])}
    assert gaps == {bottleneck}
