"""Pipeline parallelism: K-device shards vs the single-device baseline.

The acceptance bar for `repro.dist`: on paper-scale networks (VGGNet-E
and a ResNet-18-class DAG), the balanced 4-device shard of a
resource-neutral fleet — `split_device` hands each stage 3600/4 DSPs,
so total silicon is conserved — must sustain at least **2x** the
single-device throughput, absolute and per DSP slice (the two
coincide on a resource-neutral fleet by construction). On top of the
analytical verdict, a sharded ToyNet service must serve bit-identical
outputs through the worker pool, under a `transfer_corrupt` fault
plan, and a device-count co-search must hand the serving stack a
record that auto-shards.

Results land in ``benchmarks/results/BENCH_pipeline.json``; an
identical-seed rebuild of the summary is byte-identical.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.dist import (
    DEFAULT_DEVICE,
    DEFAULT_LINK,
    DEFAULT_WEIGHT_ITEMS,
    balance_stages,
    plan_atoms,
    simulate_microbatches,
    split_device,
)
from repro.faults import FaultPlan, RetryPolicy
from repro.graph import resnet18
from repro.nn.zoo import toynet, vggnet_e
from repro.serve import InferenceService, compile_plan
from repro.sim import NetworkExecutor
from repro.tune import tune

RESULTS_PATH = (pathlib.Path(__file__).parent / "results"
                / "BENCH_pipeline.json")

DEVICE_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 2.0  # at 4 devices, absolute == per-DSP (resource-neutral)


def _sweep(atoms):
    """Balanced K-device estimates for every device count, as a dict."""
    rows = {}
    for count in DEVICE_COUNTS:
        fleet = split_device(DEFAULT_DEVICE, count)
        est = balance_stages(atoms, fleet, DEFAULT_LINK,
                             weight_items=DEFAULT_WEIGHT_ITEMS)
        run = simulate_microbatches(
            [s.stage_cycles for s in est.stages],
            [s.link_cycles for s in est.stages],
            num_items=max(DEFAULT_WEIGHT_ITEMS, 2))
        rows[str(count)] = {
            "boundaries": list(est.boundaries),
            "interval_cycles": est.interval_cycles,
            "latency_cycles": est.latency_cycles,
            "link_bytes_per_item": est.link_bytes,
            "items_per_s": round(est.items_per_s, 4),
            "throughput_per_dsp": est.throughput_per_dsp,
            "total_dsp": est.total_dsp,
            "min_stage_utilization": round(min(est.stage_utilization), 4),
            "fill_drain_cycles": run.fill_drain_cycles,
            "measured_interval": run.measured_interval,
        }
    base = rows["1"]["throughput_per_dsp"]
    for row in rows.values():
        row["speedup_per_dsp"] = round(row["throughput_per_dsp"] / base, 3)
        row["throughput_per_dsp"] = round(row["throughput_per_dsp"], 8)
    return rows


@pytest.fixture(scope="module")
def scaling():
    """Analytical scaling sweeps for both paper-scale networks."""
    sweeps = {}
    vgg = vggnet_e()
    vgg_base = compile_plan(vgg, partition_sizes=(1,) * 21, validate=False)
    sweeps["vggnet_e"] = _sweep(plan_atoms(vgg_base))
    res = resnet18(input_size=69)
    res_base = compile_plan(res, validate=False)
    sweeps["resnet18"] = _sweep(plan_atoms(res_base))
    return sweeps


def _summary(scaling, serving):
    return {
        "bench": "pipeline_parallel",
        "device_counts": list(DEVICE_COUNTS),
        "weight_items": DEFAULT_WEIGHT_ITEMS,
        "link": {"latency_cycles": DEFAULT_LINK.latency_cycles,
                 "bytes_per_cycle": DEFAULT_LINK.bytes_per_cycle},
        "device": DEFAULT_DEVICE.to_dict(),
        "scaling": scaling,
        "serving": serving,
    }


def test_vgg_4dev_at_least_2x(scaling):
    rows = scaling["vggnet_e"]
    assert rows["4"]["speedup_per_dsp"] >= SPEEDUP_FLOOR, rows
    # monotone: more stages never hurt the balanced split's verdict
    assert (rows["1"]["interval_cycles"] >= rows["2"]["interval_cycles"]
            >= rows["4"]["interval_cycles"])
    # the micro-batch scheduler confirms the analytical interval
    assert rows["4"]["measured_interval"] == rows["4"]["interval_cycles"]


def test_resnet_4dev_at_least_2x(scaling):
    rows = scaling["resnet18"]
    assert rows["4"]["speedup_per_dsp"] >= SPEEDUP_FLOOR, rows
    assert rows["4"]["min_stage_utilization"] > 0.0


def test_sharded_serving_bit_identical_and_results_written(scaling):
    net = toynet()
    shape = net.input_shape
    rng = np.random.default_rng(42)
    xs = [np.round(rng.uniform(-4.0, 4.0, size=(
        shape.channels, shape.height, shape.width))) for _ in range(16)]
    reference = NetworkExecutor(net, seed=0, integer=True)
    golden = [reference.run(x) for x in xs]
    fleet = split_device(DEFAULT_DEVICE, 2)

    with InferenceService(net, devices=fleet,
                          partition_sizes=(1, 1)) as svc:
        clean = [f.result(timeout=120) for f in svc.submit_batch(xs)]
    injector = FaultPlan.parse("transfer_corrupt:p=0.5", seed=11).injector()
    with InferenceService(net, devices=fleet, partition_sizes=(1, 1),
                          faults=injector,
                          retry=RetryPolicy(max_attempts=16)) as svc:
        faulted = [f.result(timeout=120) for f in svc.submit_batch(xs)]
    assert injector.total_injected > 0
    for out, bad, ref in zip(clean, faulted, golden):
        np.testing.assert_array_equal(out, ref)
        np.testing.assert_array_equal(bad, ref)

    # device-count co-search hands serving an auto-sharding record
    record = tune(net, objective="interval_dsp",
                  device_counts=(1, 2), evals=16, seed=7).record
    tuned_plan = compile_plan(net, tuned=record)
    serving = {
        "network": net.name,
        "devices": [d.name for d in fleet],
        "requests": len(xs),
        "bit_identical": True,
        "bit_identical_under_faults": True,
        "faults_injected": injector.total_injected,
        "tuned": {"objective": "interval_dsp", "device_counts": [1, 2],
                  "devices": record.devices,
                  "plan_family": tuned_plan.key.family,
                  "value": record.value},
    }

    summary = _summary(scaling, serving)
    blob = json.dumps(summary, indent=2, sort_keys=True) + "\n"
    # identical-seed rebuild is byte-identical (no wall-clock leaks)
    assert json.dumps(_summary(scaling, serving), indent=2,
                      sort_keys=True) + "\n" == blob
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(blob)
    print(f"\npipeline parallelism: vgg 4-dev "
          f"{scaling['vggnet_e']['4']['speedup_per_dsp']}x, resnet18 4-dev "
          f"{scaling['resnet18']['4']['speedup_per_dsp']}x "
          f"[written to {RESULTS_PATH}]")
