"""Extension: the exact fusion frontier of ALL of VGGNet-E.

The paper's tool explores 2^(l-1) partitions by enumeration and its
Figure 7(b) stops at the first five convolutional layers. Because both
scores are additive over groups, an exact dynamic program recovers the
Pareto front of the *entire* 21-level network (2^20 partitions) in
milliseconds — extending Figure 7(b) to the whole feature extractor and
confirming the Section II-B observation that fusion's bandwidth leverage
concentrates in the early layers.
"""

import pytest

from repro import extract_levels, vggnet_e
from repro.analysis import render_table
from repro.core.frontier import pareto_frontier_dp
from repro.nn.stages import independent_units

MB = 2 ** 20
KB = 2 ** 10


def test_full_vgg_fusion_frontier(benchmark, record):
    units = independent_units(extract_levels(vggnet_e().feature_extractor()))
    assert len(units) == 21  # 2^20 partitions by enumeration

    front = benchmark(pareto_frontier_dp, units)
    record(render_table(
        ["partition", "transfer MB", "storage KB"],
        [(str(p.sizes), f"{p.transfer_bytes / MB:.2f}",
          f"{p.storage_bytes / KB:.1f}") for p in front],
    ), "ext_full_vgg_frontier")

    # The front is a clean monotone trade-off...
    for a, b in zip(front, front[1:]):
        assert a.storage_bytes < b.storage_bytes
        assert a.transfer_bytes > b.transfer_bytes

    # ...whose cheap end is where the leverage is: point C's ~360 KB
    # budget (15% of the full-fusion storage) already buys ~59% of all
    # savable traffic — 8x the savings-per-KB of the remaining 2 MB.
    lbl = front[0]
    fully = front[-1]
    within_c_budget = [p for p in front if p.storage_bytes <= 365 * KB]
    best_early = min(p.transfer_bytes for p in within_c_budget)
    total_savable = lbl.transfer_bytes - fully.transfer_bytes
    early_frac = (lbl.transfer_bytes - best_early) / total_savable
    storage_frac = 365 * KB / fully.storage_bytes
    assert early_frac > 0.5
    assert fully.storage_bytes > 2 * MB
    early_efficiency = early_frac / storage_frac
    tail_efficiency = (1 - early_frac) / (1 - storage_frac)
    assert early_efficiency > 4 * tail_efficiency


def test_deep_fusion_weight_infeasibility(benchmark, record):
    """Why the paper 'primarily targets the early convolutional layers':
    a fused group must hold all its weights on chip, and past the early
    layers VGGNet-E's weights dwarf the Virtex-7's BRAM."""
    from repro.hw.device import VIRTEX7_690T
    from repro.hw.resources import weights_fit_on_chip

    levels = extract_levels(vggnet_e().feature_extractor())

    def sweep():
        rows = []
        fusable = 0
        for depth in range(1, len(levels) + 1):
            group = levels[:depth]
            weight_mb = sum(l.weight_count for l in group) * 4 / MB
            fits = weights_fit_on_chip(group, VIRTEX7_690T)
            if fits:
                fusable = depth
            rows.append((depth, group[-1].name, f"{weight_mb:.2f}", fits))
        return rows, fusable

    rows, fusable = benchmark(sweep)
    record(render_table(["depth", "through", "weights MB", "fits on chip"],
                        rows), "ext_weight_feasibility")

    # The paper's five-conv fusion (7 levels) fits comfortably...
    assert fusable >= 7
    # ...but the whole network's weights cannot stay resident.
    assert not weights_fit_on_chip(levels, VIRTEX7_690T)
