"""Ablation: arithmetic precision (the paper's fixed fp32 choice).

The paper uses single-precision floats "for ease of comparison with
prior work"; the fused-layer technique itself is precision-agnostic.
Rescaling the Table II design: fp16 halves both the 3.64 MB transfer and
the 363 KB of reuse buffers while hosting the same parallelism in 40% of
the DSP slices; int16 (one MAC per DSP48E1) needs only 20%.
"""

import pytest

from repro import extract_levels, vggnet_e
from repro.analysis import render_table
from repro.core.costs import group_transfer, reuse_storage_bytes
from repro.hw.precision import FP16, FP32, INT16, precision_summary


def sweep_precisions():
    levels = extract_levels(vggnet_e().prefix(5))
    transfer = group_transfer(levels).feature_map_bytes
    storage = reuse_storage_bytes(levels)
    return [precision_summary(transfer, storage, 2880, p)
            for p in (FP32, FP16, INT16)]


def test_ablation_precision(benchmark, record):
    summaries = benchmark(sweep_precisions)
    record(render_table(
        ["precision", "transfer MB", "reuse KB", "DSP for 576 lanes"],
        [(s.precision.name, f"{s.transfer_mb:.2f}", f"{s.storage_kb:.1f}",
          s.dsp_for_same_lanes) for s in summaries],
    ), "ablation_precision")

    fp32, fp16, int16 = summaries
    # The paper's numbers at fp32.
    assert fp32.transfer_mb == pytest.approx(3.64, abs=0.01)
    assert fp32.storage_kb == pytest.approx(363, abs=1)
    # fp16: everything halves at iso-parallelism.
    assert fp16.transfer_mb == pytest.approx(fp32.transfer_mb / 2, rel=0.01)
    assert fp16.storage_kb == pytest.approx(fp32.storage_kb / 2, rel=0.01)
    assert fp16.dsp_for_same_lanes == 1152
    # int16: one MAC per DSP48E1.
    assert int16.dsp_for_same_lanes == 576
