"""Benchmark-suite helpers.

Each benchmark regenerates one table or figure from the paper, times the
generation with pytest-benchmark, asserts the paper's qualitative claims,
and records the rendered rows/series to ``benchmarks/results/<name>.txt``
(also echoed to stdout when run with ``-s``).

A session-wide :class:`repro.obs.Registry` additionally records one span
per benchmark (wall + CPU time) and dumps the snapshot to
``benchmarks/results/BENCH_obs.json`` when the session ends — the seed
of the perf trajectory future optimisation PRs compare against.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.obs import Registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OBS_PATH = RESULTS_DIR / "BENCH_obs.json"

#: One registry for the whole benchmark session; every test body runs
#: inside a span named after its nodeid.
BENCH_REGISTRY = Registry()


@pytest.fixture
def record(request):
    """Write a rendered artifact to benchmarks/results/ and echo it."""

    def _record(text: str, name: str = "") -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        stem = name or request.node.name.replace("/", "_")
        path = RESULTS_DIR / f"{stem}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture(autouse=True)
def _obs_walltime(request):
    """Span every benchmark and mirror its wall time into a counter."""
    with BENCH_REGISTRY.span(request.node.nodeid) as span:
        yield span
    record = BENCH_REGISTRY.spans[-1]
    BENCH_REGISTRY.add(f"bench.wall_s[{request.node.nodeid}]", record.wall_s)


def pytest_sessionfinish(session, exitstatus):
    if not BENCH_REGISTRY.spans:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    OBS_PATH.write_text(json.dumps(BENCH_REGISTRY.to_dict(), indent=2) + "\n")
