"""Benchmark-suite helpers.

Each benchmark regenerates one table or figure from the paper, times the
generation with pytest-benchmark, asserts the paper's qualitative claims,
and records the rendered rows/series to ``benchmarks/results/<name>.txt``
(also echoed to stdout when run with ``-s``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record(request):
    """Write a rendered artifact to benchmarks/results/ and echo it."""

    def _record(text: str, name: str = "") -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        stem = name or request.node.name.replace("/", "_")
        path = RESULTS_DIR / f"{stem}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
