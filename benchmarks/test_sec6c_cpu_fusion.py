"""Section VI-C: layer fusion on a CPU.

"our experiments with a C++ implementation of layer fusion for the first
two layers of AlexNet achieves more than 2x speedup as compared to the
layer-by-layer approach running on a desktop CPU."

We execute both schedules in the functional simulator on AlexNet's first
two conv layers (input scaled down so the pure-Python sweep is fast) and
report wall time plus the scale-invariant traffic ratio that drives the
hardware speedup.
"""

import numpy as np
import pytest

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape, extract_levels
from repro.analysis import render_table
from repro.sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input


def scaled_alexnet_head() -> Network:
    """AlexNet conv1/pool1/conv2 with real channel counts at half the
    spatial resolution (115 -> 27 -> 13), so the Python sweep stays fast
    while the traffic ratios keep AlexNet's channel structure."""
    return Network("AlexNet-head/2", TensorShape(3, 115, 115), [
        ConvSpec("conv1", out_channels=96, kernel=11, stride=4),
        ReLUSpec("relu1"),
        PoolSpec("pool1", kernel=3, stride=2),
        ConvSpec("conv2", out_channels=256, kernel=5, stride=1, padding=2, groups=2),
        ReLUSpec("relu2"),
    ])


@pytest.fixture(scope="module")
def setup():
    levels = extract_levels(scaled_alexnet_head())
    x = make_input(levels[0].in_shape, integer=True)
    reference = ReferenceExecutor(levels, integer=True)
    return levels, x, reference


def test_sec6c_layer_by_layer(benchmark, setup):
    levels, x, reference = setup
    trace = TrafficTrace()
    benchmark(reference.run, x, trace)
    assert trace.dram_read_elements > 0


def test_sec6c_fused(benchmark, setup, record):
    levels, x, reference = setup
    expected = reference.run(x)
    fused = FusedExecutor(levels, params=reference.params, tip_h=13, tip_w=13,
                          integer=True)

    def run():
        trace = TrafficTrace()
        return fused.run(x, trace), trace

    got, trace = benchmark(run)
    np.testing.assert_array_equal(expected, got)

    ref_trace = TrafficTrace()
    reference.run(x, ref_trace, merge_pooling=True)
    ratio = ref_trace.dram_total_bytes / trace.dram_total_bytes
    record(render_table(
        ["schedule", "DRAM KB"],
        [("layer-by-layer", f"{ref_trace.dram_total_bytes / 1024:.1f}"),
         ("fused", f"{trace.dram_total_bytes / 1024:.1f}"),
         ("ratio", f"{ratio:.2f}x")],
    ), "sec6c_cpu_fusion")
    # Fusing two layers removes every intermediate transfer: for AlexNet's
    # head that is a ~1.4x raw-traffic advantage (the paper's >2x CPU
    # speedup adds the cache-locality benefit of never spilling the
    # intermediate map out of L2).
    assert ratio > 1.3
