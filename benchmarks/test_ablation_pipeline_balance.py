"""Ablation: balanced pipeline vs naive uniform unroll factors.

Section IV-B balances per-layer (Tm_i, Tn_i) so stage latencies match.
The naive alternative gives every module the same unroll factors. This
bench shows the balance optimization is load-bearing: the naive design's
bottleneck stage starves the others.
"""

from math import ceil

from repro import extract_levels, vggnet_e
from repro.analysis import render_table
from repro.hw import VIRTEX7_690T, analytic_makespan
from repro.hw.device import DSP_PER_MAC
from repro.hw.fused_accel import FusedDesign, ModuleConfig, module_cycles, optimize_fused
from repro.hw.pipeline import StageTiming


def naive_design(levels, dsp_budget):
    """Split the lane budget evenly: same (Tm, Tn) for every module."""
    convs = [l for l in levels if l.is_conv]
    lanes_each = (dsp_budget // DSP_PER_MAC) // len(convs)
    tm = max(int(lanes_each ** 0.5), 1)
    tn = max(lanes_each // tm, 1)
    balanced = optimize_fused(levels, dsp_budget)  # for fresh-tile sizes
    modules = []
    for module in balanced.modules:
        level = module.level
        modules.append(ModuleConfig(
            level=level, tm=tm, tn=tn, fresh_h=module.fresh_h,
            fresh_w=module.fresh_w,
            cycles=module_cycles(level, tm, tn, module.fresh_h, module.fresh_w),
        ))
    return FusedDesign(levels=tuple(levels), modules=tuple(modules),
                       tip_h=1, tip_w=1, device=VIRTEX7_690T)


def test_ablation_pipeline_balance(benchmark, record):
    levels = extract_levels(vggnet_e().prefix(5))
    balanced = benchmark(optimize_fused, levels, 2987)
    naive = naive_design(levels, 2987)

    record(render_table(
        ["design", "kcycles", "bottleneck", "imbalance", "DSP"],
        [("balanced", f"{balanced.total_cycles / 1e3:.0f}",
          max(m.cycles for m in balanced.modules), balanced.cycle_imbalance,
          balanced.dsp),
         ("naive-equal", f"{naive.total_cycles / 1e3:.0f}",
          max(m.cycles for m in naive.modules), naive.cycle_imbalance,
          naive.dsp)],
    ), "ablation_pipeline_balance")

    # Balance wins throughput at comparable DSP cost.
    assert balanced.total_cycles < naive.total_cycles
    assert balanced.cycle_imbalance < naive.cycle_imbalance
