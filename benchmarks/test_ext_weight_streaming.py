"""Extension: where fusion stops paying — the weight-traffic crossover.

Figure 2 shows feature maps dominating the first eight VGG layers and
weights dominating beyond. This bench turns that into accelerator
traffic: per conv stage, the feature-map movement fusion could eliminate
versus the weight movement it cannot (weights must cross the chip
boundary at least once; late layers that cannot keep them resident
stream them per spatial tile). Fusion's leverage concentrates exactly
where the paper applies it.
"""

import pytest

from repro import extract_levels, vggnet_e
from repro.analysis import render_table
from repro.hw.baseline import group_stages, stage_cost
from repro.hw.device import VIRTEX7_690T
from repro.hw.resources import weights_fit_on_chip

MB = 2 ** 20


def sweep_stages():
    levels = extract_levels(vggnet_e().feature_extractor())
    stages = group_stages(levels)
    rows = []
    for stage in stages:
        resident = weights_fit_on_chip([stage.conv], VIRTEX7_690T)
        out = stage.conv.out_shape
        tile = min(56, out.height)
        cost = stage_cost(stage, tm=64, tn=9, tr=tile, tc=tile,
                          weights_resident=resident)
        rows.append((stage, cost, resident))
    return rows


def test_weight_traffic_crossover(benchmark, record):
    rows = benchmark.pedantic(sweep_stages, rounds=1, iterations=1)
    record(render_table(
        ["stage", "feature MB", "weight MB", "resident", "feature share"],
        [(s.name, f"{c.feature_words * 4 / MB:.2f}",
          f"{c.weight_words * 4 / MB:.2f}", r,
          f"{c.feature_words / (c.feature_words + c.weight_words):.0%}")
         for s, c, r in rows],
    ), "ext_weight_streaming")

    features = [c.feature_words for _, c, _ in rows]
    weights = [c.weight_words for _, c, _ in rows]
    residents = [r for _, _, r in rows]

    # Early stages: feature-dominated with resident weights — the regime
    # the paper fuses.
    assert all(residents[:5])
    assert all(f > w for f, w in zip(features[:5], weights[:5]))
    # Late stages: weights no longer fit and dominate the traffic — the
    # regime where fusing feature maps cannot help much.
    assert not any(residents[-4:])
    assert all(w > f for f, w in zip(features[-4:], weights[-4:]))
    # Fusion's addressable traffic (features) is concentrated up front.
    early_features = sum(features[:5])
    late_features = sum(features[-4:])
    assert early_features > 4 * late_features
