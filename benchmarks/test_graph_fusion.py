"""DAG fusion: fused vs unfused DRAM traffic across the graph zoo.

The paper's headline claim, extended to branchy networks: branch-aware
fused-layer scheduling moves strictly less feature-map traffic than both
the all-boundary schedule (every join is a DRAM materialization point)
and the layer-by-layer baseline — on every zoo network, at the default
ImageNet-scale input sizes.

Results land in ``benchmarks/results/BENCH_graph.json``.
"""

from __future__ import annotations

import json
import pathlib

from repro.core.fusion import Strategy
from repro.graph import GRAPH_ZOO, explore_graph

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_graph.json"


def _row(config):
    return {
        "transfer_bytes": config.feature_transfer_bytes,
        "storage_bytes": config.extra_storage_bytes,
        "fused_layers": config.fused_layer_count,
        "fused_joins": config.fused_join_count,
    }


def test_fused_dag_schedules_beat_unfused(record):
    summary = {"bench": "graph_fusion", "strategy": "reuse", "networks": {}}
    lines = []
    for name in sorted(GRAPH_ZOO):
        builder, _ = GRAPH_ZOO[name]
        network = builder()  # default ImageNet-scale input size
        result = explore_graph(network, strategy=Strategy.REUSE, tip=1)
        chosen = result.chosen
        boundary = result.all_boundary
        lbl = result.layer_by_layer
        summary["networks"][name] = {
            "input_size": network.input_shape.height,
            "nodes": len(network),
            "segments": len(result.program.segments),
            "chosen": _row(chosen),
            "all_boundary": _row(boundary),
            "layer_by_layer": _row(lbl),
            "traffic_vs_layer_by_layer": round(
                chosen.feature_transfer_bytes / lbl.feature_transfer_bytes,
                3),
        }
        lines.append(
            f"{name:12s} {chosen.feature_transfer_bytes / 2**20:8.2f} MB "
            f"fused ({chosen.fused_layer_count:3d} layers) vs "
            f"{boundary.feature_transfer_bytes / 2**20:8.2f} MB boundary vs "
            f"{lbl.feature_transfer_bytes / 2**20:8.2f} MB layer-by-layer")

        # The acceptance inequalities, strict on every network.
        assert (chosen.feature_transfer_bytes
                < boundary.feature_transfer_bytes), name
        assert (boundary.feature_transfer_bytes
                < lbl.feature_transfer_bytes), name
        assert chosen.fused_layer_count > boundary.fused_layer_count, name
        assert chosen.fused_join_count > 0, name
        assert lbl.fused_layer_count == 0, name

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True)
                            + "\n")
    record("\n".join(lines), name="graph_fusion")
    print(f"[written to {RESULTS_PATH}]")
