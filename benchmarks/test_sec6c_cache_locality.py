"""Section VI-C, mechanistically: why fusion speeds up a CPU.

The paper measures >2x CPU speedup for fused AlexNet conv1-conv2 and
attributes it to memory behavior. Here both schedules' *element-level
address traces* — identical multisets of accesses, different order —
replay through a set-associative LRU cache sized below the feature-map
footprint. The fused schedule's misses collapse toward the compulsory
minimum while the layer-by-layer schedule re-streams whole maps.
"""

import pytest

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape, extract_levels
from repro.analysis import render_table
from repro.sim.cache import CacheSim
from repro.sim.memtrace import build_address_map, fused_trace, reference_trace

KB = 1024


@pytest.fixture(scope="module")
def workload():
    # 30x30 maps (non-power-of-two to avoid set-aliasing pathologies that
    # would affect both schedules equally but add noise), 16 channels:
    # each map is ~56 KB, above the 32 KB cache; the fused schedule's
    # row-window working set is well below it.
    net = Network("cache-head", TensorShape(3, 30, 30), [
        ConvSpec("c1", out_channels=16, kernel=3, stride=1, padding=1),
        ReLUSpec("r1"),
        ConvSpec("c2", out_channels=16, kernel=3, stride=1, padding=1),
        ReLUSpec("r2"),
        PoolSpec("p1", kernel=2, stride=2),
    ])
    levels = extract_levels(net)
    return levels, build_address_map(levels)


def run_schedule(levels, amap, make_trace, cache_bytes=32 * KB):
    cache = CacheSim(cache_bytes, line_bytes=64, ways=8)
    stats = cache.run(make_trace())
    cache.flush_dirty()
    return stats


def test_sec6c_cache_locality(benchmark, record, workload):
    levels, amap = workload
    ref_stats = run_schedule(levels, amap, lambda: reference_trace(levels, amap))
    fused_stats = benchmark.pedantic(
        run_schedule, args=(levels, amap, lambda: fused_trace(levels, amap)),
        rounds=1, iterations=1)

    compulsory = amap.total_bytes // 64
    record(render_table(
        ["schedule", "accesses", "misses", "miss ratio", "DRAM lines",
         "x compulsory"],
        [("layer-by-layer", ref_stats.accesses, ref_stats.misses,
          f"{ref_stats.miss_ratio:.4f}", ref_stats.dram_lines_transferred,
          f"{ref_stats.dram_lines_transferred / compulsory:.1f}"),
         ("fused", fused_stats.accesses, fused_stats.misses,
          f"{fused_stats.miss_ratio:.4f}", fused_stats.dram_lines_transferred,
          f"{fused_stats.dram_lines_transferred / compulsory:.1f}")],
    ), "sec6c_cache_locality")

    # Identical work...
    assert fused_stats.accesses == ref_stats.accesses
    # ...but the fused order misses several times less (the mechanism
    # behind the paper's >2x CPU speedup)...
    assert fused_stats.misses < ref_stats.misses / 3
    # ...and its DRAM-line traffic approaches the compulsory minimum.
    assert fused_stats.dram_lines_transferred < 2.5 * compulsory
    assert ref_stats.dram_lines_transferred > 6 * compulsory
