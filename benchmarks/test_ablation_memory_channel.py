"""Extension: event-driven DRAM-channel simulation vs the roofline.

Validates the bandwidth model of `repro.hw.bandwidth` with a
discrete-event simulation in which the fused design's loads and stores
contend for one DRAM channel: simulated makespans respect both roofline
bounds and converge to whichever dominates.
"""

import pytest

from repro import extract_levels, vggnet_e
from repro.analysis import render_table
from repro.hw import optimize_fused
from repro.hw.memory_sim import fused_design_stages, simulate_with_channel


@pytest.fixture(scope="module")
def design():
    levels = extract_levels(vggnet_e().prefix(5))
    return optimize_fused(levels, dsp_budget=2987)


def sweep(design, bandwidths):
    stages = fused_design_stages(design)
    return [(bw, simulate_with_channel(stages, design.num_pyramids, bw))
            for bw in bandwidths]


def test_channel_simulation_vs_roofline(benchmark, record, design):
    bandwidths = [0.01, 0.05, 0.25, 1, 4, 64]
    results = benchmark.pedantic(sweep, args=(design, bandwidths),
                                 rounds=1, iterations=1)

    record(render_table(
        ["words/cycle", "sim kcyc", "compute bound", "memory bound",
         "bound", "channel util"],
        [(bw, f"{s.makespan / 1e3:.0f}", f"{s.compute_bound / 1e3:.0f}",
          f"{s.memory_bound / 1e3:.0f}", s.bound,
          f"{s.channel_utilization:.0%}") for bw, s in results],
    ), "ablation_memory_channel")

    for _, schedule in results:
        assert schedule.makespan >= schedule.compute_bound
        # (fill effects keep the simulated time near but above the bounds)
    # Starved: memory-bound; simulated time tracks the traffic bound.
    starved = results[0][1]
    assert starved.bound == "memory"
    assert starved.makespan == pytest.approx(starved.memory_bound, rel=0.05)
    # Ample: compute-bound; simulated time tracks the pipeline model.
    ample = results[-1][1]
    assert ample.bound == "compute"
    assert ample.makespan == pytest.approx(design.total_cycles, rel=0.01)
