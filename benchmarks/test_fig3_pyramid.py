"""Figure 3: the two-layer fusion pyramid walkthrough.

Regenerates the example's geometry (5x5xN input tile -> 3x3xM
intermediate -> 1x1xP output, 6M shared intermediate values) and executes
the actual two-layer fused sweep to confirm it is computation-preserving.
"""

import numpy as np
import pytest

from repro import extract_levels, toynet
from repro.analysis import figure3_walkthrough, render_table
from repro.sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input


def test_figure3_pyramid_walkthrough(benchmark, record):
    rows = benchmark(figure3_walkthrough, 4, 6, 8)
    text = render_table(
        ["level", "in tile", "out tile", "N", "M", "overlap pts/map"],
        [(r.name, f"{r.in_tile[0]}x{r.in_tile[1]}",
          f"{r.out_tile[0]}x{r.out_tile[1]}", r.channels_in, r.channels_out,
          r.overlap_points_per_map) for r in rows],
    )
    record(text, "fig3_pyramid_walkthrough")

    layer1, layer2 = rows
    assert layer1.in_tile == (5, 5)      # "tile 1 ... 5 x 5 x N input values"
    assert layer1.out_tile == (3, 3)     # "the 3 x 3 x M region"
    assert layer2.out_tile == (1, 1)     # "1 x 1 x P outputs"
    assert layer1.overlap_points_per_map == 6  # "the 6M blue circles"


def test_figure3_fused_execution(benchmark):
    levels = extract_levels(toynet(n=4, m=6, p=8))
    x = make_input(levels[0].in_shape, integer=True)
    reference = ReferenceExecutor(levels, integer=True)
    expected = reference.run(x)

    def run():
        executor = FusedExecutor(levels, params=reference.params, integer=True)
        trace = TrafficTrace()
        return executor.run(x, trace), trace

    got, trace = benchmark(run)
    np.testing.assert_array_equal(expected, got)
    assert trace.reads_for("input") == x.size  # input loaded exactly once
