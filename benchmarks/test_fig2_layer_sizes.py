"""Figure 2: input/output/weight sizes per VGGNet-E conv stage.

Regenerates the bar-chart data (pooling merged into the prior conv) and
checks the paper's prose claims about it.
"""

import pytest

from repro.analysis import figure2_series, render_figure2


def test_figure2_vgg_layer_sizes(benchmark, record):
    rows = benchmark(figure2_series)
    record(render_figure2(rows), "fig2_vgg_layer_sizes")

    assert len(rows) == 16
    first = rows[0]
    # "the first convolutional layer requires 0.6MB of input and 7KB of
    # weights; it produces 12.3MB of output feature maps"
    assert first.input_mb == pytest.approx(0.574, abs=0.01)
    assert first.output_mb == pytest.approx(12.25, abs=0.05)
    assert first.weights_mb * 1024 == pytest.approx(7, abs=0.3)
    # "In the first eight layers, the sum of the inputs and outputs is
    # much higher than the weights; beyond that, the weights dominate."
    assert all(r.feature_mb > r.weights_mb for r in rows[:8])
    assert all(r.weights_mb > r.feature_mb for r in rows[8:])
