"""Ablation: pyramid tip (output tile) size.

The Section III-B model fixes the tip at 1x1; the FPGA design is free to
use larger tiles. Larger tips shrink the recompute overhead and the
relative halo, but grow the working tiles (on-chip window buffers) and
the BL reuse buffers. This sweep quantifies that trade-off on the
VGGNet-E five-layer fusion — the design choice behind the paper's X/Y
calcparams parameters.
"""

from repro import extract_levels, vggnet_e
from repro.analysis import render_table
from repro.core.costs import recompute_overhead_ops, reuse_storage_bytes
from repro.core.pyramid import build_pyramid

KB = 2 ** 10


def sweep_tips(levels, tips):
    rows = []
    for tip in tips:
        geometry = build_pyramid(levels, tip, tip)
        window_words = sum(t.in_h * t.in_w * t.level.in_channels
                           for t in geometry.tiles)
        rows.append((
            tip,
            geometry.base_h,
            reuse_storage_bytes(levels, tip, tip),
            window_words * 4,
            recompute_overhead_ops(levels, tip, tip),
        ))
    return rows


def test_ablation_tip_size(benchmark, record):
    levels = extract_levels(vggnet_e().prefix(5))
    tips = (1, 2, 4, 7, 14, 28)
    rows = benchmark.pedantic(sweep_tips, args=(levels, tips),
                              rounds=1, iterations=1)
    record(render_table(
        ["tip", "base tile", "reuse KB", "window KB", "recompute extra Gops"],
        [(t, b, f"{s / KB:.1f}", f"{w / KB:.1f}", f"{r / 1e9:.2f}")
         for t, b, s, w, r in rows],
    ), "ablation_tip_size")

    base_tiles = [b for _, b, _, _, _ in rows]
    windows = [w for _, _, _, w, _ in rows]
    recompute = [r for _, _, _, _, r in rows]
    # Bigger tips -> bigger bases and window buffers, less recompute.
    assert base_tiles == sorted(base_tiles)
    assert windows == sorted(windows)
    assert recompute == sorted(recompute, reverse=True)
