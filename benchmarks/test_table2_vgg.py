"""Table II: fused vs baseline accelerator for VGGNet-E conv1_1-conv3_1.

Paper shape: 3.64 MB vs 77.14 MB transferred per image (95% reduction);
fused ~6.5% slower (11,665k vs 10,951k cycles); fused needs ~20% more
BRAM and slightly more DSP. Our baseline cycle count matches the paper
EXACTLY (10,951k); transfer and resources land in the same envelope.
"""

import pytest

from repro.analysis import render_comparison, table2


def test_table2_vgg_comparison(benchmark, record):
    table = benchmark.pedantic(table2, rounds=1, iterations=1)
    record(render_comparison(table), "table2_vgg")

    # Fused transfer: exactly the paper's 3.64 MB/image.
    assert table.fused.transfer_kb / 1024 == pytest.approx(3.64, abs=0.01)
    # Baseline transfer: tens of MB; >90% reduction (paper: 95%).
    assert table.transfer_reduction > 0.9

    # Baseline cycles: the paper's 10,951k, exactly.
    assert table.baseline.kilo_cycles == pytest.approx(10_951, rel=0.001)
    # Fused marginally slower (paper: +6.5%; ours within +25%).
    assert 1.0 < table.cycle_ratio < 1.25

    # DSP: baseline 2880 (Tm=64 x Tn=9 x 5), fused within its budget.
    assert table.baseline.dsp == 2880
    assert table.fused.dsp <= 2987

    # BRAM: baseline near the paper's 2085; the fused design needs more
    # (paper: +20%) for its per-layer window and reuse buffers.
    assert table.baseline.bram == pytest.approx(2085, rel=0.1)
    assert table.fused.bram > table.baseline.bram
    assert table.fused.bram < 2940  # still fits the Virtex-7
