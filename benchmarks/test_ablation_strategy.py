"""Ablation: reuse vs recompute across fusion depths.

DESIGN.md calls out the intermediate-data strategy as the paper's key
design choice (Section III-C). This sweep fuses progressively deeper
VGGNet-E prefixes under both strategies, showing why the paper commits
to reuse: storage grows gently while recompute blows up super-linearly.
"""

from repro import Strategy, analyze_group, extract_levels, vggnet_e
from repro.analysis import render_table

KB = 2 ** 10


def sweep_depths(max_convs: int = 5):
    rows = []
    for depth in range(2, max_convs + 1):
        levels = extract_levels(vggnet_e().prefix(depth))
        reuse = analyze_group(levels, Strategy.REUSE)
        recompute = analyze_group(levels, Strategy.RECOMPUTE)
        rows.append((depth, reuse, recompute))
    return rows


def test_ablation_reuse_vs_recompute_depth(benchmark, record):
    rows = benchmark.pedantic(sweep_depths, rounds=1, iterations=1)
    record(render_table(
        ["convs fused", "reuse KB", "recompute extra Gops", "ops factor"],
        [(d, f"{r.extra_storage_bytes / KB:.1f}",
          f"{rc.extra_ops / 1e9:.1f}", f"{rc.ops_increase_factor:.2f}x")
         for d, r, rc in rows],
    ), "ablation_strategy_depth")

    storages = [r.extra_storage_bytes for _, r, _ in rows]
    overheads = [rc.extra_ops for _, _, rc in rows]
    factors = [rc.ops_increase_factor for _, _, rc in rows]
    # Both costs grow with depth...
    assert storages == sorted(storages)
    assert overheads == sorted(overheads)
    # ...but the recompute *factor* keeps worsening while reuse storage
    # stays a few hundred KB for the 5-layer fusion.
    assert factors[-1] > factors[0]
    assert storages[-1] < 512 * KB
