"""Table I: fused vs baseline accelerator for AlexNet conv1-conv2.

Paper shape: the fused design transfers ~28% less (688 vs 962 KB),
finishes in fewer cycles (422k vs 621k), and pays for it in control
logic (LUT/FF up ~50%). Absolute values differ from the paper because
[19]'s exact AlexNet variant and tile parameters are not restated there;
EXPERIMENTS.md records the deltas.
"""

import pytest

from repro.analysis import render_comparison, table1


def test_table1_alexnet_comparison(benchmark, record):
    table = benchmark.pedantic(table1, rounds=1, iterations=1)
    record(render_comparison(table), "table1_alexnet")

    # Off-chip transfer: fused wins by a two-digit percentage.
    assert table.fused.transfer_kb < table.baseline.transfer_kb
    assert 0.2 < table.transfer_reduction < 0.45  # paper: 28%

    # Cycles: fused is faster on AlexNet (paper: 422 vs 621 kcycles).
    assert table.cycle_ratio < 1.0

    # Resources: within their budgets; fused pays more logic.
    assert table.baseline.dsp <= 2240
    assert table.fused.dsp <= 2450  # paper: 2401 vs 2240
    assert table.fused.luts > table.baseline.luts
    assert table.fused.ffs > table.baseline.ffs
