"""Figure 7(b): VGGNet-E's fusion design space (64 partitions).

Checks the paper's three labeled points: A (86 MB, no extra storage),
B (25 MB, 118 KB), C (3.6 MB, 362 KB — a 24x DRAM-traffic reduction).
"""

import pytest

from repro import vggnet_e
from repro.analysis import figure7_data, render_figure7


def test_figure7b_vgg_design_space(benchmark, record):
    data = benchmark(figure7_data, vggnet_e(), 5)
    record(render_figure7(data), "fig7b_vgg_space")

    assert data.num_partitions == 64

    a = data.labeled("A")
    assert a.storage_kb == 0
    assert a.transfer_mb == pytest.approx(86.3, abs=0.2)   # paper: 86 MB

    b = data.labeled("B")
    assert b.transfer_mb == pytest.approx(25, abs=0.5)     # paper: 25 MB
    assert b.storage_kb == pytest.approx(118, rel=0.05)    # paper: 118 KB

    c = data.labeled("C")
    assert c.transfer_mb == pytest.approx(3.64, abs=0.01)  # paper: 3.6 MB
    assert c.storage_kb == pytest.approx(362, rel=0.01)    # paper: 362 KB
    assert a.transfer_mb / c.transfer_mb == pytest.approx(24, rel=0.02)
