"""Lock-sanitizer overhead: sanitized vs plain serve throughput.

``REPRO_SANITIZE=1`` swaps every serving-stack lock for a
:class:`~repro.serve.sanitizer.SanitizedLock` that timestamps each
acquire/release and updates the global order graph. That bookkeeping
must stay cheap enough to leave on in stress CI: the acceptance bar is
under 5% throughput loss on a batched NiN-CIFAR workload (best of
interleaved repeats, so single-core scheduler noise and CPU warm-up
cancel rather than accrue to one side). NiN's millisecond-scale
requests are the representative
case — on ToyNet's ~50us microbenchmark requests the same wrapper
costs ~15%, but that measures Python call dispatch, not serving
overhead. The sanitized run must also finish violation-free — this
doubles as a soak of the serving stack's lock discipline.

Before/after requests/s and the overhead fraction land in
``benchmarks/results/BENCH_sanitizer.json`` and, via the session
registry, in ``BENCH_obs.json`` (``lock_wait_s`` / ``max_hold_s``
carry lower-is-better bench-diff direction).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.nn.zoo import nin_cifar
from repro.serve import InferenceService, PlanCache, get_sanitizer

from conftest import BENCH_REGISTRY

RESULTS_PATH = (pathlib.Path(__file__).parent / "results"
                / "BENCH_sanitizer.json")

REQUESTS = 64
REPEATS = 5
MAX_OVERHEAD_FRAC = 0.05


@pytest.fixture(scope="module")
def workload():
    network = nin_cifar()
    shape = network.input_shape
    rng = np.random.default_rng(0)
    xs = [np.round(rng.uniform(-4.0, 4.0, size=(
        shape.channels, shape.height, shape.width)))
        for _ in range(REQUESTS)]
    cache = PlanCache()
    cache.get_or_compile(network)  # compile once, outside the timed runs
    return network, xs, cache


def _requests_per_s(network, xs, cache):
    svc = InferenceService(network, workers=4, max_batch=8,
                           max_wait_ms=0.5, max_queue=len(xs), cache=cache)
    futures = svc.submit_batch(xs)
    for f in futures:
        f.result(timeout=120)
    rps = svc.stats.requests_per_s()
    svc.shutdown()
    return rps


def test_sanitizer_overhead_under_5_percent(workload, record, monkeypatch):
    network, xs, cache = workload
    _requests_per_s(network, xs, cache)  # warm-up

    plain, sanitized = [], []
    for repeat in range(REPEATS):  # interleave, alternating who goes first
        order = ((0, 1), (1, 0))[repeat % 2]
        for sanitize in order:
            if sanitize:
                monkeypatch.setenv("REPRO_SANITIZE", "1")
                get_sanitizer().reset()
                sanitized.append(_requests_per_s(network, xs, cache))
            else:
                monkeypatch.delenv("REPRO_SANITIZE", raising=False)
                plain.append(_requests_per_s(network, xs, cache))

    san = get_sanitizer()
    assert [v.render() for v in san.violations] == []
    lock_metrics = san.metrics_dict()
    assert lock_metrics["locks"]  # the factories actually sanitized

    before = max(plain)  # best-of: robust to one-sided slow runs
    after = max(sanitized)
    overhead = max(0.0, 1.0 - after / before)
    assert overhead < MAX_OVERHEAD_FRAC, (
        f"sanitizer costs {overhead:.1%} throughput "
        f"({before:.0f} -> {after:.0f} req/s)")

    BENCH_REGISTRY.add("bench.sanitizer.before_requests_per_s", before)
    BENCH_REGISTRY.add("bench.sanitizer.after_requests_per_s", after)
    BENCH_REGISTRY.add("bench.sanitizer.overhead_frac", overhead)
    BENCH_REGISTRY.add("bench.sanitizer.lock_wait_s",
                       lock_metrics["lock_wait_s"])
    BENCH_REGISTRY.add("bench.sanitizer.max_hold_s",
                       lock_metrics["max_hold_s"])

    payload = {
        "bench": "serve_sanitizer_overhead",
        "network": "NiN-CIFAR",
        "requests": REQUESTS,
        "repeats": REPEATS,
        "before": {"requests_per_s": before, "sanitize": 0},
        "after": {"requests_per_s": after, "sanitize": 1,
                  "violations": len(san.violations),
                  "lock_wait_s": lock_metrics["lock_wait_s"],
                  "max_hold_s": lock_metrics["max_hold_s"]},
        "overhead_frac": overhead,
        "max_overhead_frac": MAX_OVERHEAD_FRAC,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                            + "\n")
    record(f"sanitizer overhead: {before:.0f} -> {after:.0f} req/s "
           f"({overhead:.2%}, bar {MAX_OVERHEAD_FRAC:.0%}); "
           f"{len(san.violations)} violations",
           name="sanitizer_overhead")
