"""Ablation: buffering the group input vs re-reading its halo from DRAM.

The paper's design reads every input element exactly once (Figure 3's
green circles are the only new loads). Dropping the input-level BL/BT
buffers makes each pyramid re-fetch its window overlap from DRAM. This
bench measures that halo traffic with the executed simulator.
"""

import numpy as np

from repro import extract_levels, vggnet_e
from repro.analysis import render_table
from repro.nn.network import Network
from repro.nn.shapes import TensorShape
from repro.sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input


def scaled_vgg5():
    sliced = vggnet_e().prefix(5)
    shape = sliced.input_shape
    return Network(sliced.name, TensorShape(shape.channels, shape.height // 4,
                                            shape.width // 4), sliced.specs)


def test_ablation_input_reuse(benchmark, record):
    levels = extract_levels(scaled_vgg5())
    x = make_input(levels[0].in_shape, integer=True)
    reference = ReferenceExecutor(levels, integer=True)
    expected = reference.run(x)

    def run(input_reuse):
        executor = FusedExecutor(levels, params=reference.params,
                                 integer=True, input_reuse=input_reuse)
        trace = TrafficTrace()
        out = executor.run(x, trace)
        return out, trace, executor

    out_buffered, buffered, exec_buffered = run(True)
    out_halo, halo, _ = benchmark.pedantic(run, args=(False,),
                                           rounds=1, iterations=1)
    np.testing.assert_array_equal(expected, out_buffered)
    np.testing.assert_array_equal(expected, out_halo)

    record(render_table(
        ["variant", "input words read", "x input size"],
        [("buffered (paper)", buffered.reads_for("input"),
          f"{buffered.reads_for('input') / x.size:.2f}"),
         ("halo re-read", halo.reads_for("input"),
          f"{halo.reads_for('input') / x.size:.2f}")],
    ), "ablation_input_reuse")

    assert buffered.reads_for("input") == x.size      # exactly once
    assert halo.reads_for("input") > 1.5 * x.size     # significant halo
