"""Section III-C, executed: the reuse and recompute strategies run for real.

The analytic comparison (test_sec3c_reuse_vs_recompute.py) predicts the
two strategies' costs; here both executors actually run a scaled AlexNet
head and the measured counters must land exactly on the models:

* both schedules produce bit-identical outputs and read the input once;
* the reuse executor performs exactly the redundancy-free op count with
  a small bounded buffer footprint;
* the recompute executor performs exactly the Section III-B recompute
  count with no inter-pyramid buffers (only an input line buffer).
"""

import numpy as np
import pytest

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape, extract_levels
from repro.analysis import render_table
from repro.core.costs import one_pass_ops, recompute_ops
from repro.sim import (
    FusedExecutor,
    RecomputeExecutor,
    ReferenceExecutor,
    TrafficTrace,
    make_input,
)


@pytest.fixture(scope="module")
def workload():
    net = Network("AlexNet-head/4", TensorShape(3, 59, 59), [
        ConvSpec("conv1", out_channels=24, kernel=11, stride=4),
        ReLUSpec("relu1"),
        PoolSpec("pool1", kernel=3, stride=2),
        ConvSpec("conv2", out_channels=32, kernel=5, stride=1, padding=2, groups=2),
        ReLUSpec("relu2"),
    ])
    levels = extract_levels(net)
    x = make_input(levels[0].in_shape, integer=True)
    reference = ReferenceExecutor(levels, integer=True)
    return levels, x, reference, reference.run(x)


def test_executed_reuse_strategy(benchmark, workload):
    levels, x, reference, expected = workload
    fused = FusedExecutor(levels, params=reference.params, integer=True)

    def run():
        trace = TrafficTrace()
        return fused.run(x, trace), trace

    got, trace = benchmark(run)
    np.testing.assert_array_equal(expected, got)
    assert trace.ops == one_pass_ops(levels)          # zero redundancy
    assert trace.reads_for("input") == x.size          # input once


def test_executed_recompute_strategy(benchmark, record, workload):
    levels, x, reference, expected = workload
    recompute = RecomputeExecutor(levels, params=reference.params, integer=True)

    def run():
        trace = TrafficTrace()
        return recompute.run(x, trace), trace

    got, trace = benchmark(run)
    np.testing.assert_array_equal(expected, got)
    assert trace.ops == recompute_ops(levels, 1, 1)    # exactly the model
    assert trace.reads_for("input") == x.size          # bandwidth unchanged

    fused = FusedExecutor(levels, params=reference.params, integer=True)
    fused_trace = TrafficTrace()
    fused.run(x, fused_trace)
    record(render_table(
        ["strategy", "executed Mops", "vs one pass", "on-chip state"],
        [("reuse", f"{fused_trace.ops / 1e6:.1f}", "1.00x",
          f"{fused.buffer_bytes / 1024:.1f} KB BL/BT"),
         ("recompute", f"{trace.ops / 1e6:.1f}",
          f"{trace.ops / fused_trace.ops:.2f}x",
          f"{recompute.line_buffer_elements * 8 / 1024:.1f} KB line buffer")],
    ), "sec3c_executed_strategies")
    assert trace.ops > 2 * fused_trace.ops  # recompute redundancy is real