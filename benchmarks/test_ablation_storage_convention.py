"""Ablation: the two BT-sizing conventions in Section III-B.

The paper's storage formula says ``(K-S) x D x N`` (tile width), but its
Listing 4 implementation indexes BT by the absolute column — a full-row
buffer. VGG's 362 KB headline matches the full-row convention exactly
(we get 363.0 KB); AlexNet's 55.86 KB falls between the two conventions
(23.3 and 72.8 KB), suggesting an intermediate accounting for the merged
pool stage. This bench quantifies both on the paper's workloads.
"""

import pytest

from repro import alexnet, extract_levels, vggnet_e
from repro.analysis import render_table
from repro.core.costs import reuse_storage_bytes

KB = 2 ** 10


def sweep_conventions():
    workloads = {
        "AlexNet fuse conv1-2": extract_levels(alexnet().prefix(2)),
        "VGG-E fuse 5 convs": extract_levels(vggnet_e().prefix(5)),
        "VGG-E fuse all": extract_levels(vggnet_e().feature_extractor()),
    }
    rows = []
    for name, levels in workloads.items():
        rows.append((
            name,
            reuse_storage_bytes(levels, bt_full_width=True) / KB,
            reuse_storage_bytes(levels, bt_full_width=False) / KB,
        ))
    return rows


def test_ablation_storage_convention(benchmark, record):
    rows = benchmark(sweep_conventions)
    record(render_table(
        ["workload", "full-row BT KB", "literal-formula KB"],
        [(n, f"{f:.1f}", f"{l:.1f}") for n, f, l in rows],
    ), "ablation_storage_convention")

    by_name = {name: (full, literal) for name, full, literal in rows}
    # VGG's paper number (362 KB) sits on the full-row convention.
    assert by_name["VGG-E fuse 5 convs"][0] == pytest.approx(362, rel=0.01)
    # AlexNet's paper number (55.86 KB) falls between the conventions.
    alex_full, alex_literal = by_name["AlexNet fuse conv1-2"]
    assert alex_literal < 55.86 < alex_full
    # The literal formula always lower-bounds the implementable buffer.
    assert all(literal <= full for _, full, literal in rows)
