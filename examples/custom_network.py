"""Apply layer fusion to your own CNN.

Defines a small face-detection-style CNN from scratch with the repro IR,
explores its fusion space, verifies the fused schedule functionally, and
sizes a fused accelerator for it — the full workflow on a network the
paper never saw.

Run:  python examples/custom_network.py
"""

import numpy as np

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, Strategy, TensorShape, explore
from repro.nn.stages import extract_levels
from repro.hw import generate_fused, optimize_fused
from repro.sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input

KB = 2 ** 10
MB = 2 ** 20


def build_network() -> Network:
    """A compact detector: 64x64 grayscale in, three conv blocks."""
    return Network(
        "TinyDetector",
        TensorShape(1, 64, 64),
        [
            ConvSpec("conv1", out_channels=16, kernel=5, stride=1, padding=2),
            ReLUSpec("relu1"),
            PoolSpec("pool1", kernel=2, stride=2),
            ConvSpec("conv2", out_channels=32, kernel=3, stride=1, padding=1),
            ReLUSpec("relu2"),
            PoolSpec("pool2", kernel=2, stride=2),
            ConvSpec("conv3", out_channels=64, kernel=3, stride=1, padding=1),
            ReLUSpec("relu3"),
        ],
    )


def main() -> None:
    network = build_network()

    # 1. Explore the fusion design space.
    result = explore(network, strategy=Strategy.REUSE)
    print(f"{network.name}: {result.num_partitions} partitions")
    for point in result.front:
        print(f"  {str(point.sizes):15s} {point.feature_transfer_bytes / KB:8.1f} KB"
              f" transfer, {point.extra_storage_bytes / KB:6.1f} KB storage")

    # 2. Verify the fully fused schedule functionally.
    levels = extract_levels(network)
    x = make_input(levels[0].in_shape, integer=True)
    reference = ReferenceExecutor(levels, integer=True)
    fused = FusedExecutor(levels, params=reference.params, tip_h=2, tip_w=2,
                          integer=True)
    trace = TrafficTrace()
    assert np.array_equal(reference.run(x), fused.run(x, trace))
    print(f"\nfused == layer-by-layer; traffic {trace.dram_total_bytes / KB:.1f} KB "
          f"(vs {result.layer_by_layer.feature_transfer_bytes / KB:.1f} KB unfused), "
          f"buffers {fused.buffer_bytes / KB:.1f} KB")

    # 3. Size a fused accelerator for a mid-range FPGA budget.
    design = optimize_fused(levels, dsp_budget=900, tip_h=2, tip_w=2)
    print(f"\naccelerator: DSP {design.dsp}, BRAM {design.resources().bram18}, "
          f"{design.total_cycles / 1e3:.0f}k cycles/frame")
    for module in design.modules:
        print(f"  {module.level.name}: Tm={module.tm} Tn={module.tn} "
              f"{module.cycles} cycles/pyramid")
    lines = generate_fused(design).count("\n")
    print(f"\nHLS template: {lines} lines of C++ "
          f"(see examples/generate_hls.py to emit it)")


if __name__ == "__main__":
    main()
