"""Quickstart: analyze layer fusion for VGGNet-E in a dozen lines.

Reproduces the paper's headline numbers: fusing the first five
convolutional layers (with their pooling/ReLU/padding layers) replaces
~86 MB of per-image DRAM traffic with ~3.6 MB, at the cost of ~362 KB of
on-chip reuse buffers.

Run:  python examples/quickstart.py
"""

from repro import Strategy, explore, vggnet_e

MB = 2 ** 20
KB = 2 ** 10


def main() -> None:
    network = vggnet_e()
    result = explore(network, num_convs=5, strategy=Strategy.REUSE)

    print(f"{result.network_name}: {result.num_partitions} ways to fuse "
          f"{len(result.units)} conv/pool units\n")

    a = result.layer_by_layer
    c = result.fully_fused
    print(f"point A (layer-by-layer): {a.feature_transfer_bytes / MB:6.2f} MB/image, "
          f"{a.extra_storage_bytes / KB:6.1f} KB extra storage")
    print(f"point C (fully fused):    {c.feature_transfer_bytes / MB:6.2f} MB/image, "
          f"{c.extra_storage_bytes / KB:6.1f} KB extra storage")
    reduction = 1 - c.feature_transfer_bytes / a.feature_transfer_bytes
    print(f"\nfusing all five conv layers removes {reduction:.0%} of the "
          f"off-chip feature-map traffic (paper: 95%).")

    print("\nPareto-optimal trade-offs:")
    for point in result.front:
        print(f"  groups {str(point.sizes):18s} "
              f"{point.feature_transfer_bytes / MB:6.2f} MB  "
              f"{point.extra_storage_bytes / KB:7.1f} KB")


if __name__ == "__main__":
    main()
