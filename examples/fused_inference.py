"""Run an actual fused-pyramid inference and verify it end to end.

This is the Section VI-C experiment in miniature: the same convolutions
evaluated (a) layer by layer and (b) as one fused pyramid sweep with BL/BT
reuse buffers. The two schedules produce identical outputs while the
fused one moves a fraction of the data to/from (simulated) DRAM.

The input is scaled down from 224x224 so the pure-Python sweep finishes
in seconds; the dataflow is identical at any scale.

Run:  python examples/fused_inference.py [--scale 4] [--tip 2]
"""

import argparse
import time

import numpy as np

from repro import extract_levels, vggnet_e
from repro.nn.network import Network
from repro.nn.shapes import TensorShape
from repro.sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input

MB = 2 ** 20


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=int, default=4,
                        help="divide the 224x224 input by this factor")
    parser.add_argument("--tip", type=int, default=2, help="pyramid tip size")
    args = parser.parse_args()

    sliced = vggnet_e().prefix(5)
    shape = sliced.input_shape
    network = Network(sliced.name,
                      TensorShape(shape.channels, shape.height // args.scale,
                                  shape.width // args.scale),
                      sliced.specs)
    levels = extract_levels(network)
    x = make_input(levels[0].in_shape, integer=True)

    reference = ReferenceExecutor(levels, integer=True)
    ref_trace = TrafficTrace()
    start = time.perf_counter()
    expected = reference.run(x, ref_trace, merge_pooling=True)
    ref_seconds = time.perf_counter() - start

    fused = FusedExecutor(levels, params=reference.params,
                          tip_h=args.tip, tip_w=args.tip, integer=True)
    fused_trace = TrafficTrace()
    start = time.perf_counter()
    got = fused.run(x, fused_trace)
    fused_seconds = time.perf_counter() - start

    assert np.array_equal(expected, got), "schedules disagree!"
    print(f"input {levels[0].in_shape} -> output {levels[-1].out_shape}; "
          f"outputs bit-identical across schedules\n")
    print(f"{'':24s}{'layer-by-layer':>16s}{'fused pyramid':>16s}")
    print(f"{'DRAM traffic':24s}{ref_trace.dram_total_bytes / MB:15.2f}M"
          f"{fused_trace.dram_total_bytes / MB:15.2f}M")
    print(f"{'arithmetic (Mops)':24s}{ref_trace.ops / 1e6:15.1f} "
          f"{fused_trace.ops / 1e6:15.1f} ")
    print(f"{'wall time (s)':24s}{ref_seconds:15.2f} {fused_seconds:15.2f} ")
    print(f"\nreuse buffers held {fused.buffer_bytes / 1024:.1f} KB on chip; "
          f"traffic reduced "
          f"{1 - fused_trace.dram_total_bytes / ref_trace.dram_total_bytes:.0%}.")
    print("(Section VI-C reports >2x CPU speedup from fusion; wall time "
          "here depends on NumPy dispatch overhead and varies with --tip "
          "and --scale, while the traffic column is scale-invariant.)")


if __name__ == "__main__":
    main()
