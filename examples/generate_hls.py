"""Generate the HLS C++ for the paper's Table II accelerator.

Optimizes per-layer unroll factors (Tm_i, Tn_i) for the first five
convolutional layers of VGGNet-E under the Table II DSP budget, balances
the pipeline, and emits the specialized Listing 1-4 C++ to stdout (or a
file). The emitted code carries the calcparams constants (pyramid base
X, Y and strides Sx, Sy) the paper's Section IV-B defines.

Run:  python examples/generate_hls.py [--out fused_vgg.cpp]
"""

import argparse

from repro import extract_levels, vggnet_e
from repro.hw import generate_fused, optimize_fused


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default=None, help="write C++ here instead of stdout")
    parser.add_argument("--dsp", type=int, default=2987, help="DSP slice budget")
    parser.add_argument("--convs", type=int, default=5)
    args = parser.parse_args()

    levels = extract_levels(vggnet_e().prefix(args.convs))
    design = optimize_fused(levels, dsp_budget=args.dsp)

    print(f"// pipeline: {[(s.name, s.cycles) for s in design.stage_timings()]}")
    print(f"// DSP {design.dsp}, BRAM {design.resources().bram18}, "
          f"{design.total_cycles / 1e3:.0f}k cycles/image, "
          f"{design.feature_transfer_bytes / 2**20:.2f} MB/image")
    code = generate_fused(design)
    if args.out:
        with open(args.out, "w") as f:
            f.write(code)
        print(f"// wrote {len(code.splitlines())} lines to {args.out}")
    else:
        print(code)


if __name__ == "__main__":
    main()
