"""Designer workflow: pick a fusion partition under resource budgets.

The paper's exploration tool (Section V) enumerates every way to split a
network into fused groups and reports the storage/bandwidth trade-off of
each. This example walks the workflow an accelerator designer would use:

1. sweep the whole space for AlexNet and VGGNet-E (Figure 7),
2. pick the best partition under an on-chip storage budget,
3. pick the best partition under a DRAM bandwidth budget,
4. compare the reuse strategy against recompute for the chosen design.

Run:  python examples/design_space_exploration.py
"""

from repro import Strategy, alexnet, explore, vggnet_e
from repro.core import analyze_group, units_to_levels

KB = 2 ** 10
MB = 2 ** 20


def sweep(name, network, num_convs=None) -> None:
    result = explore(network, num_convs=num_convs)
    print(f"== {name}: {result.num_partitions} partitions, "
          f"{len(result.front)} Pareto-optimal ==")
    for point in result.front:
        print(f"  {str(point.sizes):22s} {point.feature_transfer_bytes / MB:7.2f} MB"
              f" {point.extra_storage_bytes / KB:8.1f} KB")

    budget = 128 * KB
    pick = result.best_under_storage(budget)
    print(f"\nbest under a {budget // KB} KB storage budget: groups {pick.sizes} "
          f"-> {pick.feature_transfer_bytes / MB:.2f} MB/image")

    bw_budget = 20 * MB
    pick = result.best_under_transfer(bw_budget)
    if pick is None:
        print(f"no partition reaches {bw_budget // MB} MB/image")
    else:
        print(f"best under a {bw_budget // MB} MB/image bandwidth budget: "
              f"groups {pick.sizes} -> {pick.extra_storage_bytes / KB:.1f} KB storage")

    # Strategy comparison for the fully fused design (Section III-C).
    levels = units_to_levels(result.units)
    reuse = analyze_group(levels, Strategy.REUSE)
    recompute = analyze_group(levels, Strategy.RECOMPUTE)
    print(f"\nfully fused, reuse:     {reuse.extra_storage_bytes / KB:9.1f} KB extra storage")
    print(f"fully fused, recompute: {recompute.extra_ops / 1e6:9.1f} M extra ops "
          f"({recompute.ops_increase_factor:.1f}x total arithmetic)")
    print()


def main() -> None:
    sweep("AlexNet (5 conv + 3 pool units)", alexnet())
    sweep("VGGNet-E first 5 convs (+2 pools)", vggnet_e(), num_convs=5)


if __name__ == "__main__":
    main()
