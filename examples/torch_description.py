"""Analyze a network described in a Torch-style text file.

The paper's exploration tool was built as a Torch extension that "reads
a Torch description of a CNN" (Section V-A). This example does the same:
it loads OverFeat-fast — a network the paper never evaluated — from
`examples/networks/overfeat_fast.torchtxt`, explores its fusion space,
and verifies the fully fused schedule functionally at reduced scale.

Run:  python examples/torch_description.py
"""

import pathlib

import numpy as np

from repro import Strategy, explore, extract_levels, parse_network
from repro.nn.network import Network
from repro.nn.shapes import TensorShape
from repro.sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input

KB = 2 ** 10
MB = 2 ** 20

DESCRIPTION = pathlib.Path(__file__).parent / "networks" / "overfeat_fast.torchtxt"


def main() -> None:
    network = parse_network(DESCRIPTION.read_text(), name="OverFeat-fast",
                            input_size=(231, 231))
    print(f"parsed {network.name}: {len(network)} layers, "
          f"input {network.input_shape}, output {network.output_shape}\n")

    result = explore(network, strategy=Strategy.REUSE)
    print(f"{result.num_partitions} fusion partitions; Pareto front:")
    for point in result.front:
        print(f"  {str(point.sizes):22s} {point.feature_transfer_bytes / MB:7.2f} MB"
              f"  {point.extra_storage_bytes / KB:8.1f} KB")
    a, c = result.layer_by_layer, result.fully_fused
    print(f"\nfull fusion: {1 - c.feature_transfer_bytes / a.feature_transfer_bytes:.0%}"
          f" less DRAM traffic for {c.extra_storage_bytes / KB:.0f} KB of buffers")

    # Functional check at reduced scale (the dataflow is scale-invariant;
    # 103 is the nearest size where every stride-2 window tiles exactly).
    scaled = Network("OverFeat-small", TensorShape(3, 103, 103),
                     [spec for spec in network.specs])
    levels = extract_levels(scaled)
    x = make_input(levels[0].in_shape, integer=True)
    reference = ReferenceExecutor(levels, integer=True)
    fused = FusedExecutor(levels, params=reference.params, integer=True)
    trace = TrafficTrace()
    assert np.array_equal(reference.run(x), fused.run(x, trace))
    print(f"\nscaled functional check: fused == layer-by-layer, "
          f"{trace.reads_for('input')} input words read "
          f"(= input size {x.size})")


if __name__ == "__main__":
    main()
