"""Why fusion speeds up CPUs: a cache study (Section VI-C's mechanism).

Replays the element-level address traces of the layer-by-layer and fused
schedules — identical accesses, different order — through simulated
caches of several sizes. Once the feature maps outgrow the cache, the
layer-by-layer schedule re-streams them from DRAM while the fused
schedule's misses stay near the compulsory minimum.

Run:  python examples/cache_study.py
"""

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape, extract_levels
from repro.sim.cache import CacheSim
from repro.sim.memtrace import build_address_map, fused_trace, reference_trace

KB = 1024


def main() -> None:
    network = Network("cache-head", TensorShape(3, 30, 30), [
        ConvSpec("c1", out_channels=16, kernel=3, stride=1, padding=1),
        ReLUSpec("r1"),
        ConvSpec("c2", out_channels=16, kernel=3, stride=1, padding=1),
        ReLUSpec("r2"),
        PoolSpec("p1", kernel=2, stride=2),
    ])
    levels = extract_levels(network)
    amap = build_address_map(levels)
    compulsory = amap.total_bytes // 64
    print(f"{network.name}: data footprint {amap.total_bytes / KB:.0f} KB "
          f"({compulsory} cache lines)\n")
    print(f"{'cache':>8s} {'schedule':>16s} {'misses':>8s} {'DRAM lines':>11s} "
          f"{'x compulsory':>13s}")

    for cache_kb in (16, 32, 64, 256):
        for name, make in (("layer-by-layer",
                            lambda: reference_trace(levels, amap)),
                           ("fused", lambda: fused_trace(levels, amap))):
            cache = CacheSim(cache_kb * KB, line_bytes=64, ways=8)
            stats = cache.run(make())
            cache.flush_dirty()
            print(f"{cache_kb:6d}KB {name:>16s} {stats.misses:8d} "
                  f"{stats.dram_lines_transferred:11d} "
                  f"{stats.dram_lines_transferred / compulsory:13.1f}")
        print()
    print("Fusion pays off once the cache holds its pyramid-row working set "
          "but not whole maps (32-64 KB here): several-fold less DRAM "
          "traffic at identical arithmetic — the paper's >2x CPU speedup. "
          "Below that working set (16 KB) fusion's interleaving thrashes, "
          "and with a cache larger than every map (256 KB) the schedules "
          "converge — the same crossover structure the on-chip-buffer "
          "trade-off has in hardware.")


if __name__ == "__main__":
    main()
